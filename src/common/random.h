#pragma once

// Deterministic pseudo-random sources for workload generation.
//
// Every experiment binary seeds its own Rng so runs are exactly
// reproducible; nothing in the library touches std::random_device.

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace gdedup {

// xoshiro256** — fast, high-quality, value-semantic.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(uint64_t seed);

  uint64_t next();

  // Uniform in [0, n).  n must be > 0.
  uint64_t below(uint64_t n) {
    assert(n > 0);
    // Lemire's nearly-divisionless bounded generation.
    __uint128_t m = static_cast<__uint128_t>(next()) * n;
    return static_cast<uint64_t>(m >> 64);
  }

  // Uniform in [lo, hi] inclusive.
  uint64_t between(uint64_t lo, uint64_t hi) {
    assert(lo <= hi);
    return lo + below(hi - lo + 1);
  }

  // Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  bool chance(double p) { return uniform01() < p; }

  // Fill `out[0..len)` with pseudo-random bytes.
  void fill(void* out, size_t len);

 private:
  uint64_t s_[4];
};

// Zipf-distributed ranks in [0, n): models hot/cold access skew for the
// cache-manager experiments.  Uses the rejection-inversion sampler of
// Hörmann & Derflinger, suitable for large n.
class ZipfDistribution {
 public:
  ZipfDistribution(uint64_t n, double theta);

  uint64_t sample(Rng& rng) const;

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  double h(double x) const;
  double h_integral(double x) const;
  double h_integral_inverse(double x) const;

  uint64_t n_;
  double theta_;
  double h_integral_x1_;
  double h_integral_n_;
  double s_;
};

// Deterministic 64-bit mix (splitmix64 finalizer).  Used to derive content
// from (stream-id, block-index) pairs so two generators given the same ids
// produce identical bytes — the backbone of controllable duplicate ratios.
inline uint64_t mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace gdedup
