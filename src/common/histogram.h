#pragma once

// Latency / size statistics with percentile queries.
//
// Log-bucketed histogram (HdrHistogram-style): fixed memory, ~1% relative
// error on quantiles, O(1) record.  Used by every benchmark harness to
// report the mean / p50 / p99 rows the paper's figures plot.

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace gdedup {

class Histogram {
 public:
  // Values are arbitrary non-negative integers (we use nanoseconds).
  Histogram();

  void record(uint64_t value);
  void merge(const Histogram& o);
  void reset();

  uint64_t count() const { return count_; }
  // Smallest recorded value.  An empty histogram has no minimum; by
  // contract min() returns 0 then (callers must check count() if they
  // need to distinguish "no samples" from "a sample of 0").
  uint64_t min() const { return count_ ? min_ : 0; }
  uint64_t max() const { return max_; }
  double mean() const {
    return count_ ? static_cast<double>(sum_) / static_cast<double>(count_)
                  : 0.0;
  }
  uint64_t sum() const { return sum_; }

  // q in [0, 1]; returns a value with <= ~1.6% relative error.
  uint64_t percentile(double q) const;

  // Batch percentile query: one bucket walk for any number of quantiles.
  // Quantiles need not be sorted; results line up with the input order.
  std::vector<uint64_t> percentiles(std::initializer_list<double> qs) const {
    return percentiles(std::vector<double>(qs));
  }
  // Runtime-sized variant for callers that assemble the quantile set
  // dynamically (the telemetry sampler batches every quantile series that
  // targets one histogram into a single walk).
  std::vector<uint64_t> percentiles(const std::vector<double>& qs) const;

  // Compact single-line JSON object, e.g.
  //   {"count":12,"min":3,"max":917,"mean":101.250,"p50":88,"p90":401,
  //    "p99":917,"p999":917}
  // Key order and float formatting are fixed so dumps are byte-stable.
  std::string json() const;

  // "mean=1.23ms p50=... p99=... max=..." with `value` printed as duration.
  std::string summary_ns() const;

 private:
  static constexpr int kSubBits = 6;  // 64 sub-buckets per octave
  static constexpr int kBuckets = 64 * (1 << kSubBits);

  static int bucket_for(uint64_t v);
  static uint64_t bucket_upper_bound(int b);

  std::vector<uint32_t> buckets_;
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = 0;
  uint64_t max_ = 0;
};

// Human-readable durations ("1.26 ms") and sizes ("3.3 TB") for tables.
std::string format_duration_ns(double ns);
std::string format_bytes(double bytes);
std::string format_rate(double bytes_per_sec);

}  // namespace gdedup
