#include "common/histogram.h"

#include <algorithm>
#include <bit>
#include <cstdio>

namespace gdedup {

Histogram::Histogram() : buckets_(kBuckets, 0) {}

int Histogram::bucket_for(uint64_t v) {
  if (v < (1u << kSubBits)) return static_cast<int>(v);
  const int msb = 63 - std::countl_zero(v);
  const int octave = msb - kSubBits + 1;
  const int sub = static_cast<int>((v >> (msb - kSubBits)) & ((1 << kSubBits) - 1));
  const int idx = ((octave + 1) << kSubBits) + sub;
  return std::min(idx, kBuckets - 1);
}

uint64_t Histogram::bucket_upper_bound(int b) {
  if (b < (1 << kSubBits)) return static_cast<uint64_t>(b);
  const int octave = (b >> kSubBits) - 1;
  const int sub = b & ((1 << kSubBits) - 1);
  const uint64_t base = 1ULL << (octave + kSubBits - 1);
  const uint64_t width = base >> kSubBits;  // 2^(msb - kSubBits)
  return base + (static_cast<uint64_t>(sub) + 1) * (width ? width : 1) - 1;
}

void Histogram::record(uint64_t value) {
  buckets_[bucket_for(value)]++;
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  count_++;
  sum_ += value;
}

void Histogram::merge(const Histogram& o) {
  for (int i = 0; i < kBuckets; i++) buckets_[i] += o.buckets_[i];
  if (o.count_ > 0) {
    min_ = count_ ? std::min(min_, o.min_) : o.min_;
    max_ = std::max(max_, o.max_);
  }
  count_ += o.count_;
  sum_ += o.sum_;
}

void Histogram::reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = sum_ = min_ = max_ = 0;
}

uint64_t Histogram::percentile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<uint64_t>(q * static_cast<double>(count_ - 1));
  uint64_t seen = 0;
  for (int i = 0; i < kBuckets; i++) {
    seen += buckets_[i];
    if (seen > target) return std::min(bucket_upper_bound(i), max_);
  }
  return max_;
}

std::vector<uint64_t> Histogram::percentiles(
    const std::vector<double>& qs) const {
  std::vector<uint64_t> out(qs.size(), 0);
  if (count_ == 0 || qs.size() == 0) return out;
  // Sort query indices by target rank so a single forward bucket walk
  // answers every quantile.
  std::vector<std::pair<uint64_t, size_t>> targets;
  targets.reserve(qs.size());
  size_t qi = 0;
  for (double q : qs) {
    q = std::clamp(q, 0.0, 1.0);
    targets.emplace_back(
        static_cast<uint64_t>(q * static_cast<double>(count_ - 1)), qi++);
  }
  std::sort(targets.begin(), targets.end());
  uint64_t seen = 0;
  size_t t = 0;
  for (int i = 0; i < kBuckets && t < targets.size(); i++) {
    seen += buckets_[i];
    while (t < targets.size() && seen > targets[t].first) {
      out[targets[t].second] = std::min(bucket_upper_bound(i), max_);
      t++;
    }
  }
  for (; t < targets.size(); t++) out[targets[t].second] = max_;
  return out;
}

std::string Histogram::json() const {
  const auto ps = percentiles({0.5, 0.9, 0.99, 0.999});
  char buf[256];
  std::snprintf(
      buf, sizeof(buf),
      "{\"count\":%llu,\"min\":%llu,\"max\":%llu,\"mean\":%.3f,"
      "\"p50\":%llu,\"p90\":%llu,\"p99\":%llu,\"p999\":%llu}",
      static_cast<unsigned long long>(count_),
      static_cast<unsigned long long>(min()),
      static_cast<unsigned long long>(max_), mean(),
      static_cast<unsigned long long>(ps[0]),
      static_cast<unsigned long long>(ps[1]),
      static_cast<unsigned long long>(ps[2]),
      static_cast<unsigned long long>(ps[3]));
  return buf;
}

std::string Histogram::summary_ns() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf), "n=%llu mean=%s p50=%s p99=%s max=%s",
                static_cast<unsigned long long>(count_),
                format_duration_ns(mean()).c_str(),
                format_duration_ns(static_cast<double>(percentile(0.5))).c_str(),
                format_duration_ns(static_cast<double>(percentile(0.99))).c_str(),
                format_duration_ns(static_cast<double>(max_)).c_str());
  return buf;
}

std::string format_duration_ns(double ns) {
  char buf[64];
  if (ns < 1e3) {
    std::snprintf(buf, sizeof(buf), "%.0f ns", ns);
  } else if (ns < 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2f us", ns / 1e3);
  } else if (ns < 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", ns / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f s", ns / 1e9);
  }
  return buf;
}

std::string format_bytes(double bytes) {
  char buf[64];
  const char* units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  int u = 0;
  while (bytes >= 1024.0 && u < 4) {
    bytes /= 1024.0;
    u++;
  }
  std::snprintf(buf, sizeof(buf), "%.2f %s", bytes, units[u]);
  return buf;
}

std::string format_rate(double bytes_per_sec) {
  return format_bytes(bytes_per_sec) + "/s";
}

}  // namespace gdedup
