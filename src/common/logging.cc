#include "common/logging.h"

#include <cstdarg>
#include <cstring>

namespace gdedup {

namespace {
LogLevel g_level = LogLevel::kWarn;

const char* level_tag(LogLevel l) {
  switch (l) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarn:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kOff:
      return "?";
  }
  return "?";
}
}  // namespace

LogLevel log_level() { return g_level; }
void set_log_level(LogLevel level) { g_level = level; }

void log_write(LogLevel level, const char* file, int line, std::string msg) {
  const char* base = std::strrchr(file, '/');
  base = base ? base + 1 : file;
  std::fprintf(stderr, "[%s %s:%d] %s\n", level_tag(level), base, line,
               msg.c_str());
}

std::string strprintf(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  const int n = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  }
  va_end(ap2);
  return out;
}

}  // namespace gdedup
