#pragma once

// Intrusive-list LRU map used by the dedup cache manager.
//
// O(1) touch / insert / evict.  Values are stored by value; keys must be
// hashable and equality-comparable.

#include <cassert>
#include <list>
#include <optional>
#include <unordered_map>
#include <utility>

namespace gdedup {

template <typename K, typename V>
class LruMap {
 public:
  explicit LruMap(size_t capacity) : capacity_(capacity) {
    assert(capacity > 0);
  }

  size_t size() const { return map_.size(); }
  size_t capacity() const { return capacity_; }
  bool contains(const K& k) const { return map_.count(k) > 0; }

  // Lookup without touching recency.
  const V* peek(const K& k) const {
    auto it = map_.find(k);
    return it == map_.end() ? nullptr : &it->second->second;
  }

  // Lookup and mark most-recently-used.
  V* get(const K& k) {
    auto it = map_.find(k);
    if (it == map_.end()) return nullptr;
    order_.splice(order_.begin(), order_, it->second);
    return &it->second->second;
  }

  // Insert or overwrite; returns the evicted entry if capacity was hit.
  std::optional<std::pair<K, V>> put(const K& k, V v) {
    auto it = map_.find(k);
    if (it != map_.end()) {
      it->second->second = std::move(v);
      order_.splice(order_.begin(), order_, it->second);
      return std::nullopt;
    }
    order_.emplace_front(k, std::move(v));
    map_[k] = order_.begin();
    if (map_.size() <= capacity_) return std::nullopt;
    auto victim = std::move(order_.back());
    map_.erase(victim.first);
    order_.pop_back();
    return victim;
  }

  bool erase(const K& k) {
    auto it = map_.find(k);
    if (it == map_.end()) return false;
    order_.erase(it->second);
    map_.erase(it);
    return true;
  }

  // Least-recently-used entry, if any (does not touch recency).
  const std::pair<K, V>* coldest() const {
    return order_.empty() ? nullptr : &order_.back();
  }

  void clear() {
    order_.clear();
    map_.clear();
  }

  // Iterate MRU -> LRU.
  auto begin() const { return order_.begin(); }
  auto end() const { return order_.end(); }

 private:
  size_t capacity_;
  std::list<std::pair<K, V>> order_;
  std::unordered_map<K, typename std::list<std::pair<K, V>>::iterator> map_;
};

}  // namespace gdedup
