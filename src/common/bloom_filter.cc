#include "common/bloom_filter.h"

#include <algorithm>

namespace gdedup {

BloomFilter::BloomFilter(size_t expected_entries, double false_positive_rate) {
  expected_entries = std::max<size_t>(expected_entries, 1);
  false_positive_rate = std::clamp(false_positive_rate, 1e-9, 0.5);
  const double ln2 = 0.6931471805599453;
  const double bits = -static_cast<double>(expected_entries) *
                      std::log(false_positive_rate) / (ln2 * ln2);
  const size_t words = std::max<size_t>(1, static_cast<size_t>(bits / 64.0) + 1);
  bits_.assign(words, 0);
  hashes_ = std::max(
      1, static_cast<int>(std::lround(bits / expected_entries * ln2)));
}

void BloomFilter::insert(uint64_t key) {
  // Double hashing (Kirsch–Mitzenmacher): h_i = h1 + i*h2.
  const uint64_t h1 = mix64(key);
  const uint64_t h2 = mix64(h1) | 1;
  const uint64_t nbits = bits_.size() * 64;
  for (int i = 0; i < hashes_; i++) {
    const uint64_t bit = (h1 + static_cast<uint64_t>(i) * h2) % nbits;
    bits_[bit >> 6] |= 1ULL << (bit & 63);
  }
  inserted_++;
}

bool BloomFilter::maybe_contains(uint64_t key) const {
  const uint64_t h1 = mix64(key);
  const uint64_t h2 = mix64(h1) | 1;
  const uint64_t nbits = bits_.size() * 64;
  for (int i = 0; i < hashes_; i++) {
    const uint64_t bit = (h1 + static_cast<uint64_t>(i) * h2) % nbits;
    if (!(bits_[bit >> 6] & (1ULL << (bit & 63)))) return false;
  }
  return true;
}

void BloomFilter::clear() {
  std::fill(bits_.begin(), bits_.end(), 0);
  inserted_ = 0;
}

double BloomFilter::estimated_fp_rate() const {
  const double nbits = static_cast<double>(bits_.size() * 64);
  const double fill =
      1.0 - std::exp(-static_cast<double>(hashes_) *
                     static_cast<double>(inserted_) / nbits);
  return std::pow(fill, hashes_);
}

}  // namespace gdedup
