#pragma once

// Copy-on-write byte buffer.
//
// Plays the role Ceph's bufferlist plays in the real system: object data,
// chunk payloads and message bodies are passed by value everywhere, but the
// underlying bytes are shared until someone mutates them.  Replicating an
// object to two OSDs therefore costs two refcount bumps, not two copies —
// which both matches the real system's zero-copy intent and keeps the
// simulated cluster's memory footprint proportional to *unique* data.

#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace gdedup {

class Buffer {
 public:
  Buffer() = default;

  explicit Buffer(size_t len, uint8_t fill = 0)
      : store_(std::make_shared<std::vector<uint8_t>>(len, fill)),
        off_(0),
        len_(len),
        gen_(next_generation()) {}

  static Buffer copy_of(const void* data, size_t len) {
    Buffer b(len);
    if (len > 0) std::memcpy(b.mutable_data(), data, len);
    return b;
  }
  static Buffer copy_of(std::string_view s) {
    return copy_of(s.data(), s.size());
  }
  static Buffer copy_of(std::span<const uint8_t> s) {
    return copy_of(s.data(), s.size());
  }

  size_t size() const { return len_; }
  bool empty() const { return len_ == 0; }

  const uint8_t* data() const {
    return store_ ? store_->data() + off_ : nullptr;
  }
  std::span<const uint8_t> span() const { return {data(), len_}; }
  std::string_view view() const {
    return {reinterpret_cast<const char*>(data()), len_};
  }

  // Mutable access: detaches from any sharers (and from a parent slice).
  uint8_t* mutable_data();

  uint8_t operator[](size_t i) const { return data()[i]; }

  // Zero-copy sub-slice [off, off+len).  Clamped to bounds.
  Buffer slice(size_t off, size_t len) const;

  // Value concatenation (copies both sides into fresh storage).
  static Buffer concat(const Buffer& a, const Buffer& b);

  // Overwrite [off, off+src.size()) with src, growing if needed.
  void write_at(size_t off, const Buffer& src);

  // Grow (zero-filled) or shrink to `len`.
  void resize(size_t len);

  bool content_equals(const Buffer& o) const {
    return len_ == o.len_ &&
           (len_ == 0 || std::memcmp(data(), o.data(), len_) == 0);
  }

  std::string to_string() const { return std::string(view()); }

  // True if the backing storage is shared with another Buffer (test hook
  // for the COW behaviour).
  bool shares_storage_with(const Buffer& o) const {
    return store_ && store_ == o.store_;
  }

  // True if any other Buffer currently references the same storage —
  // i.e. passing this by value was a refcount bump, not a byte copy.
  // Feeds the osd.bytes_zero_copied accounting.
  bool storage_shared() const { return store_ && store_.use_count() > 1; }

  // Content-identity for memoization (e.g. the fingerprint cache).
  //
  // generation() is bumped from a global monotonic counter on every event
  // that can change the bytes this Buffer exposes: fresh-storage
  // construction, mutable_data(), resize().  slice() inherits the parent's
  // generation (a slice's bytes are stable until someone detaches).  Two
  // Buffers with equal (data(), size(), generation()) are guaranteed to
  // hold identical bytes: generations are globally unique per mutation
  // event, so a recycled allocation at the same address can never collide
  // with a stale cache entry (ABA-safe).
  uint64_t generation() const { return gen_; }
  const void* storage_id() const { return store_.get(); }

 private:
  void detach();  // ensure sole ownership of exactly [off_, off_+len_)
  static uint64_t next_generation();

  std::shared_ptr<std::vector<uint8_t>> store_;
  size_t off_ = 0;
  size_t len_ = 0;
  uint64_t gen_ = 0;
};

}  // namespace gdedup
