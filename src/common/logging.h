#pragma once

// Minimal leveled logger.
//
// The simulator is single-threaded and deterministic, so the logger is a
// plain global with no locking.  Benchmarks run at kWarn; tests that debug
// a scenario flip to kDebug locally.

#include <cstdio>
#include <string>

namespace gdedup {

enum class LogLevel { kDebug = 0, kInfo, kWarn, kError, kOff };

LogLevel log_level();
void set_log_level(LogLevel level);

void log_write(LogLevel level, const char* file, int line, std::string msg);

// printf-style formatting into a std::string.
std::string strprintf(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

#define GDLOG(level, ...)                                                  \
  do {                                                                     \
    if (static_cast<int>(level) >= static_cast<int>(::gdedup::log_level())) \
      ::gdedup::log_write(level, __FILE__, __LINE__,                       \
                          ::gdedup::strprintf(__VA_ARGS__));               \
  } while (0)

#define LOG_DEBUG(...) GDLOG(::gdedup::LogLevel::kDebug, __VA_ARGS__)
#define LOG_INFO(...) GDLOG(::gdedup::LogLevel::kInfo, __VA_ARGS__)
#define LOG_WARN(...) GDLOG(::gdedup::LogLevel::kWarn, __VA_ARGS__)
#define LOG_ERROR(...) GDLOG(::gdedup::LogLevel::kError, __VA_ARGS__)

}  // namespace gdedup
