#include "common/random.h"

#include <cmath>
#include <cstring>

namespace gdedup {

namespace {
inline uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

void Rng::reseed(uint64_t seed) {
  // Seed the four lanes with splitmix64 so any seed (including 0) works.
  uint64_t x = seed;
  for (auto& lane : s_) lane = mix64(x++);
}

uint64_t Rng::next() {
  const uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

void Rng::fill(void* out, size_t len) {
  auto* p = static_cast<uint8_t*>(out);
  while (len >= 8) {
    uint64_t v = next();
    std::memcpy(p, &v, 8);
    p += 8;
    len -= 8;
  }
  if (len > 0) {
    uint64_t v = next();
    std::memcpy(p, &v, len);
  }
}

ZipfDistribution::ZipfDistribution(uint64_t n, double theta)
    : n_(n), theta_(theta) {
  assert(n > 0);
  assert(theta > 0 && theta != 1.0);
  h_integral_x1_ = h_integral(1.5) - 1.0;
  h_integral_n_ = h_integral(static_cast<double>(n) + 0.5);
  s_ = 2.0 - h_integral_inverse(h_integral(2.5) - h(2.0));
}

double ZipfDistribution::h(double x) const { return std::pow(x, -theta_); }

double ZipfDistribution::h_integral(double x) const {
  const double log_x = std::log(x);
  // Integral of x^-theta: x^(1-theta)/(1-theta).
  return std::exp((1.0 - theta_) * log_x) / (1.0 - theta_);
}

double ZipfDistribution::h_integral_inverse(double x) const {
  return std::exp(std::log(x * (1.0 - theta_)) / (1.0 - theta_));
}

uint64_t ZipfDistribution::sample(Rng& rng) const {
  while (true) {
    const double u =
        h_integral_n_ + rng.uniform01() * (h_integral_x1_ - h_integral_n_);
    const double x = h_integral_inverse(u);
    uint64_t k = static_cast<uint64_t>(x + 0.5);
    if (k < 1) k = 1;
    if (k > n_) k = n_;
    const double kd = static_cast<double>(k);
    if (kd - x <= s_ || u >= h_integral(kd + 0.5) - h(kd)) {
      return k - 1;  // 0-based rank
    }
  }
}

}  // namespace gdedup
