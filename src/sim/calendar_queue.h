#pragma once

// Calendar queue + slab arena for the event engine.
//
// The scheduler's hot loop is insert/pop-min over a pending-event set whose
// timestamps cluster tightly around the current virtual time (device
// completions, network hops) with a sparse far tail (engine ticks, client
// timeouts).  A classic calendar queue fits that shape: events hash into a
// ring of `width`-wide time buckets, so insert and pop-min are O(1)
// amortized instead of the O(log n) of a binary heap, and the bucket width
// self-tunes from an EMA of inter-dequeue gaps.
//
// Ordering contract: pop order is strictly (t, key) ascending.  Keys are
// unique per queue (the scheduler assigns monotone per-shard sequence
// numbers, so FIFO among same-time events), which makes pop order a pure
// function of the queue *contents* — bucket geometry, resizes and width
// retunes can never affect it.  The determinism tests lean on that.
//
// Monotonicity contract: after pop_min() returns a node with time T, every
// subsequent insert must carry t >= T (the scheduler clamps to the shard
// clock).  This keeps the lap scan in peek_min() sound.
//
// Event nodes are allocated from a slab arena (EventArena): fixed-size
// blocks carved into EventNode slots threaded on a free list.  A node is
// freed back to its shard's arena as soon as it is dispatched, so steady
// state runs allocation-free; the blocks themselves live until the arena
// dies with the shard.

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <new>
#include <vector>

#include "sim/time.h"

namespace gdedup {

struct EventNode {
  SimTime t = 0;
  uint64_t key = 0;  // total tie-break order among same-time events
  EventNode* next = nullptr;
  std::function<void()> cb{};
  uint64_t aux = 0;    // ingress: rx service time (ns)
  int32_t node = -1;   // ingress: destination node
  uint8_t kind = 0;    // Scheduler dispatch tag (callback / ingress)
};

// Slab allocator for EventNode.  Blocks are never returned individually;
// freed nodes go on a free list for reuse.  Not thread-safe: each shard
// owns one arena and only allocates/frees from its own execution context.
class EventArena {
 public:
  EventArena() = default;
  EventArena(const EventArena&) = delete;
  EventArena& operator=(const EventArena&) = delete;

  ~EventArena() {
    // All nodes must have been destroyed (CalendarQueue's destructor runs
    // first and frees its remaining nodes); only the raw blocks are left.
    for (void* b : blocks_) ::operator delete(b);
  }

  template <typename... Args>
  EventNode* make(Args&&... args) {
    void* p = free_;
    if (p != nullptr) {
      free_ = *static_cast<void**>(p);
    } else {
      if (bump_ == bump_end_) grow();
      p = bump_;
      bump_ += kSlotBytes;
    }
    return new (p) EventNode{std::forward<Args>(args)...};
  }

  void destroy(EventNode* n) {
    n->~EventNode();
    void* p = n;
    *static_cast<void**>(p) = free_;
    free_ = p;
  }

  uint64_t bytes_reserved() const {
    return static_cast<uint64_t>(blocks_.size()) * kBlockBytes;
  }

 private:
  static constexpr size_t kSlotBytes =
      (sizeof(EventNode) + alignof(std::max_align_t) - 1) &
      ~(alignof(std::max_align_t) - 1);
  static constexpr size_t kNodesPerBlock = 1024;
  static constexpr size_t kBlockBytes = kSlotBytes * kNodesPerBlock;

  void grow() {
    void* b = ::operator new(kBlockBytes);
    blocks_.push_back(b);
    bump_ = static_cast<char*>(b);
    bump_end_ = bump_ + kBlockBytes;
  }

  std::vector<void*> blocks_;
  char* bump_ = nullptr;
  char* bump_end_ = nullptr;
  void* free_ = nullptr;  // intrusive free list through the slot storage
};

class CalendarQueue {
 public:
  static constexpr SimTime kNoEvent = std::numeric_limits<SimTime>::max();

  explicit CalendarQueue(EventArena* arena) : arena_(arena) {
    buckets_.resize(kInitialBuckets);
    mask_ = kInitialBuckets - 1;
  }
  CalendarQueue(const CalendarQueue&) = delete;
  CalendarQueue& operator=(const CalendarQueue&) = delete;

  ~CalendarQueue() {
    for (Bucket& b : buckets_) {
      EventNode* n = b.head;
      while (n != nullptr) {
        EventNode* next = n->next;
        arena_->destroy(n);
        n = next;
      }
    }
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  // Takes ownership of `n` (allocated from this queue's arena).
  void insert(EventNode* n) {
    assert(n->t >= 0);
    size_++;
    bucket_insert(n);
    if (cached_min_ != nullptr && before(n, cached_min_)) cached_min_ = n;
    if (size_ > buckets_.size() * 2 && buckets_.size() < kMaxBuckets) {
      resize(buckets_.size() * 2);
    }
  }

  // Earliest node by (t, key), or nullptr.  Does not remove.
  EventNode* peek_min() {
    if (size_ == 0) return nullptr;
    if (cached_min_ != nullptr) return cached_min_;
    // Lap scan: walk one calendar year of buckets starting at the bucket
    // of the last dispatch time.  Bucket b in lap position i covers
    // [(lap0+i)*width, (lap0+i+1)*width); the first head that falls inside
    // its slice is the global min (bucket lists are (t,key)-sorted).
    const SimTime lap0 = scan_t_ / width_;
    const size_t n = buckets_.size();
    for (size_t i = 0; i < n; i++) {
      const size_t b = static_cast<size_t>(lap0 + static_cast<SimTime>(i)) & mask_;
      EventNode* h = buckets_[b].head;
      if (h != nullptr &&
          h->t < (lap0 + static_cast<SimTime>(i) + 1) * width_) {
        cached_min_ = h;
        return h;
      }
    }
    // Sparse tail: nothing within a year of the scan point.  Take the min
    // over all bucket heads directly and jump the scan point to it.
    EventNode* best = nullptr;
    for (Bucket& bk : buckets_) {
      if (bk.head != nullptr && (best == nullptr || before(bk.head, best))) {
        best = bk.head;
      }
    }
    assert(best != nullptr);
    scan_t_ = best->t;
    cached_min_ = best;
    return best;
  }

  SimTime min_time() {
    EventNode* n = peek_min();
    return n == nullptr ? kNoEvent : n->t;
  }

  // Removes and returns the earliest node; caller dispatches and returns
  // it to the arena.  nullptr if empty.
  EventNode* pop_min() {
    EventNode* n = peek_min();
    if (n == nullptr) return nullptr;
    Bucket& bk = buckets_[bucket_of(n->t)];
    assert(bk.head == n);
    bk.head = n->next;
    if (bk.head == nullptr) bk.tail = nullptr;
    size_--;
    // Same-slice continuation: anything left in this bucket's current
    // calendar slice is the global min (earlier buckets of this lap were
    // already empty, later buckets/laps cover later times), so batches of
    // near-time events pop without rescanning.
    if (bk.head != nullptr &&
        bk.head->t / width_ == n->t / width_) {
      cached_min_ = bk.head;
    } else {
      cached_min_ = nullptr;
    }
    // Width tuning signal: EMA of *advancing* inter-dequeue gaps.  Zero
    // gaps (same-timestamp batches) say nothing about how far apart the
    // calendar slices should be and would collapse the width, so only
    // nonzero gaps feed the estimate.
    const SimTime gap = n->t - scan_t_;
    if (gap > 0) gap_ema_ += (gap - gap_ema_) / 8;
    scan_t_ = n->t;
    if (size_ > kInitialBuckets && size_ < buckets_.size() / 4) {
      resize(buckets_.size() / 2);
    } else if (++pops_since_retune_ >= kRetunePeriod) {
      // Steady-state width retune: the size-triggered resizes above never
      // fire while the population is stable, but the dequeue-gap estimate
      // keeps moving (the initial fill runs with no pops at all, so the
      // first-resize width can be arbitrarily stale).  A width much wider
      // than the gap packs whole event cohorts into a few buckets and the
      // sorted bucket insert goes linear; much narrower and the lap scan
      // walks mostly-empty slices.  Re-bucket in place when the target
      // drifts 4x from the current width — O(n), amortized over the
      // retune period.
      pops_since_retune_ = 0;
      const SimTime target = target_width();
      if (width_ > 4 * target || 4 * width_ < target) {
        resize(buckets_.size());
      }
    }
    return n;
  }

  SimTime width() const { return width_; }
  size_t num_buckets() const { return buckets_.size(); }

 private:
  struct Bucket {
    EventNode* head = nullptr;
    EventNode* tail = nullptr;
  };

  static constexpr size_t kInitialBuckets = 256;
  static constexpr size_t kMaxBuckets = 1 << 20;
  static constexpr SimTime kMinWidth = 4;  // ns; dense queues want ~1 gap/slot
  static constexpr uint64_t kRetunePeriod = 4096;  // pops between width checks

  static bool before(const EventNode* a, const EventNode* b) {
    if (a->t != b->t) return a->t < b->t;
    return a->key < b->key;
  }

  size_t bucket_of(SimTime t) const {
    return static_cast<size_t>(t / width_) & mask_;
  }

  void bucket_insert(EventNode* n) {
    Bucket& bk = buckets_[bucket_of(n->t)];
    if (bk.head == nullptr) {
      n->next = nullptr;
      bk.head = bk.tail = n;
      return;
    }
    if (before(bk.tail, n)) {  // common case: append (FIFO / rising t)
      n->next = nullptr;
      bk.tail->next = n;
      bk.tail = n;
      return;
    }
    if (before(n, bk.head)) {
      n->next = bk.head;
      bk.head = n;
      return;
    }
    EventNode* p = bk.head;
    while (p->next != nullptr && before(p->next, n)) p = p->next;
    n->next = p->next;
    p->next = n;
    if (n->next == nullptr) bk.tail = n;
  }

  SimTime target_width() const {
    return gap_ema_ * 2 < kMinWidth ? kMinWidth : gap_ema_ * 2;
  }

  void resize(size_t nbuckets) {
    std::vector<EventNode*> all;
    all.reserve(size_);
    for (Bucket& b : buckets_) {
      EventNode* n = b.head;
      while (n != nullptr) {
        all.push_back(n);
        n = n->next;
      }
    }
    buckets_.assign(nbuckets, Bucket{});
    mask_ = nbuckets - 1;
    width_ = target_width();
    for (EventNode* n : all) bucket_insert(n);
    cached_min_ = nullptr;
  }

  EventArena* arena_;
  std::vector<Bucket> buckets_;
  size_t mask_ = 0;
  SimTime width_ = kMicrosecond;
  SimTime scan_t_ = 0;       // last dispatch time; lap scans start here
  SimTime gap_ema_ = kMicrosecond;
  uint64_t pops_since_retune_ = 0;
  EventNode* cached_min_ = nullptr;  // always the head of its bucket
  size_t size_ = 0;
};

}  // namespace gdedup
