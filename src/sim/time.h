#pragma once

// Virtual-time base types shared by the event engine headers.

#include <cstdint>

namespace gdedup {

using SimTime = int64_t;  // nanoseconds since simulation start

constexpr SimTime kNanosecond = 1;
constexpr SimTime kMicrosecond = 1000;
constexpr SimTime kMillisecond = 1000 * 1000;
constexpr SimTime kSecond = 1000LL * 1000 * 1000;

inline SimTime usec(double u) { return static_cast<SimTime>(u * kMicrosecond); }
inline SimTime msec(double m) { return static_cast<SimTime>(m * kMillisecond); }
inline SimTime sec(double s) { return static_cast<SimTime>(s * kSecond); }

}  // namespace gdedup
