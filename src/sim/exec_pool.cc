#include "sim/exec_pool.h"

#include <chrono>
#include <cstdlib>

namespace gdedup {

namespace {
uint64_t host_now_ns() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

const char* kernel_name(Kernel k) {
  switch (k) {
    case Kernel::kFingerprint:
      return "fingerprint";
    case Kernel::kCdcChunk:
      return "cdc_chunk";
    case Kernel::kCrc:
      return "crc";
    case Kernel::kEcEncode:
      return "ec_encode";
    case Kernel::kEcDecode:
      return "ec_decode";
    case Kernel::kCompress:
      return "compress";
    case Kernel::kWeakHash:
      return "weak_hash";
    default:
      return "?";
  }
}

int ExecPool::env_threads() {
  const char* v = std::getenv("GDEDUP_EXEC_THREADS");
  if (v == nullptr || *v == '\0') return 1;
  int n = std::atoi(v);
  if (n < 1) n = 1;
  if (n > 64) n = 64;
  return n;
}

ExecPool::ExecPool(int threads) : threads_(threads < 1 ? 1 : threads) {
  if (threads_ > 1) {
    workers_.reserve(threads_);
    for (int i = 0; i < threads_; i++) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }
}

ExecPool::~ExecPool() {
  if (!workers_.empty()) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      stop_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& t : workers_) t.join();
    // worker_loop drains before exiting, so every job submitted to a
    // parallel pool has executed by now.
  }
}

ExecPool::Token ExecPool::submit(Kernel k, std::function<void()> fn) {
  auto job = std::make_shared<Job>();
  job->fn = std::move(fn);
  job->kernel = k;
  kernel_jobs_[static_cast<int>(k)].fetch_add(1, std::memory_order_relaxed);
  if (parallel()) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      queue_.push_back(job);
    }
    work_cv_.notify_one();
  }
  // Serial: nothing to enqueue — join() steals the token and runs it
  // inline, i.e. the compute lands exactly where the pre-offload code
  // ran it (and, as before, never runs if the completion never fires).
  return job;
}

void ExecPool::join(const Token& t) {
  if (!t) return;
  int expected = kQueued;
  if (t->state.compare_exchange_strong(expected, kClaimed,
                                       std::memory_order_acq_rel)) {
    // Not started yet: steal it and run inline on the caller.  Workers
    // that later pop the token see kClaimed and skip it.
    run_job(*t);
  } else if (t->state.load(std::memory_order_acquire) != kDone) {
    std::unique_lock<std::mutex> lk(mu_);
    done_cv_.wait(
        lk, [&] { return t->state.load(std::memory_order_acquire) == kDone; });
  }
  // Destroy the closure here, on the joining (event-loop) thread: Buffer
  // refcounts captured by the job drop at a deterministic point instead
  // of whenever a worker happens to finish.
  t->fn = nullptr;
}

void ExecPool::run_job(Job& j) {
  const uint64_t t0 = host_now_ns();
  j.fn();
  kernel_busy_ns_[static_cast<int>(j.kernel)].fetch_add(
      host_now_ns() - t0, std::memory_order_relaxed);
  {
    // Publish under the mutex so a join() blocked in done_cv_.wait cannot
    // miss the transition.
    std::lock_guard<std::mutex> lk(mu_);
    j.state.store(kDone, std::memory_order_release);
  }
  done_cv_.notify_all();
}

void ExecPool::worker_loop() {
  for (;;) {
    Token t;
    {
      std::unique_lock<std::mutex> lk(mu_);
      work_cv_.wait(lk, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;  // drained: exit only with an empty queue
        continue;
      }
      t = std::move(queue_.front());
      queue_.pop_front();
    }
    int expected = kQueued;
    if (t->state.compare_exchange_strong(expected, kClaimed,
                                         std::memory_order_acq_rel)) {
      jobs_offloaded_.fetch_add(1, std::memory_order_relaxed);
      run_job(*t);
    }
  }
}

ExecPool::KernelStats ExecPool::kernel_stats(Kernel k) const {
  KernelStats s;
  s.jobs = kernel_jobs_[static_cast<int>(k)].load(std::memory_order_relaxed);
  s.busy_ns =
      kernel_busy_ns_[static_cast<int>(k)].load(std::memory_order_relaxed);
  return s;
}

}  // namespace gdedup
