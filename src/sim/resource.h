#pragma once

// Service-station models for simulated devices.
//
// FifoResource: one server, FIFO — an SSD command queue or one direction
// of a NIC.  PooledResource: k identical servers — a node's CPU cores.
// Reservations are made eagerly at submit time: the caller learns the
// completion time immediately and schedules its continuation there.  Both
// track cumulative busy time so benchmarks can report utilization (the
// paper's Figure 10 plots CPU% next to latency).

#include <algorithm>
#include <cstdint>
#include <queue>
#include <vector>

#include "sim/scheduler.h"

namespace gdedup {

class FifoResource {
 public:
  // Submit a job of `service` duration at time `now`; returns completion.
  SimTime submit(SimTime now, SimTime service) {
    const SimTime start = std::max(now, busy_until_);
    busy_until_ = start + service;
    busy_ns_ += service;
    return busy_until_;
  }

  // Time a job submitted now would wait before starting.
  SimTime backlog(SimTime now) const {
    return std::max<SimTime>(0, busy_until_ - now);
  }

  uint64_t cumulative_busy_ns() const { return busy_ns_; }

 private:
  SimTime busy_until_ = 0;
  uint64_t busy_ns_ = 0;
};

class PooledResource {
 public:
  explicit PooledResource(int servers) : free_at_(static_cast<size_t>(servers), 0) {}

  SimTime submit(SimTime now, SimTime service) {
    // Earliest-free server takes the job.
    auto it = std::min_element(free_at_.begin(), free_at_.end());
    const SimTime start = std::max(now, *it);
    *it = start + service;
    busy_ns_ += service;
    return *it;
  }

  int servers() const { return static_cast<int>(free_at_.size()); }
  uint64_t cumulative_busy_ns() const { return busy_ns_; }

  // Mean utilization of the pool over [t0, t1), given the cumulative busy
  // counter sampled at those two instants.
  static double utilization(uint64_t busy0, uint64_t busy1, SimTime t0,
                            SimTime t1, int servers) {
    if (t1 <= t0 || servers <= 0) return 0.0;
    return static_cast<double>(busy1 - busy0) /
           (static_cast<double>(t1 - t0) * servers);
  }

 private:
  std::vector<SimTime> free_at_;
  uint64_t busy_ns_ = 0;
};

}  // namespace gdedup
