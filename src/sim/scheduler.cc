#include "sim/scheduler.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

namespace gdedup {

namespace {

// Execution context of the current host thread: which scheduler (if any)
// is dispatching an event here, and on which lane.  Shard workers and the
// serial pump both set it around dispatch, so at()/now() route by context.
struct ExecCtx {
  const Scheduler* sched = nullptr;
  int shard = 0;
};
thread_local ExecCtx t_ctx;

std::atomic<bool> g_parallel_phase{false};

constexpr uint64_t kGlobalLaneByte = 0xFF;
constexpr uint64_t kSeqMask = (1ull << 56) - 1;

}  // namespace

bool sim_parallel_phase() {
  return g_parallel_phase.load(std::memory_order_relaxed);
}

Scheduler::Scheduler(int shards) {
  if (shards < 1) shards = 1;
  if (shards > 64) shards = 64;
  shards_.reserve(static_cast<size_t>(shards));
  for (int i = 0; i < shards; i++) {
    shards_.push_back(std::make_unique<Shard>(i));
  }
  parallel_ = env_parallel();
}

Scheduler::~Scheduler() { stop_workers(); }

int Scheduler::env_shards() {
  const char* s = std::getenv("GDEDUP_SIM_SHARDS");
  if (s == nullptr || *s == '\0') return 1;
  const int n = std::atoi(s);
  if (n < 1) return 1;
  if (n > 64) return 64;
  return n;
}

bool Scheduler::env_parallel() {
  const char* s = std::getenv("GDEDUP_SIM_PARALLEL");
  if (s == nullptr) return false;
  return std::strcmp(s, "0") != 0 && std::strcmp(s, "") != 0;
}

void Scheduler::set_node_shard_map(std::vector<int> node_to_shard) {
  for (int s : node_to_shard) {
    assert(s >= 0 && s < shards());
    (void)s;
  }
  node_shard_ = std::move(node_to_shard);
}

int Scheduler::shard_of_node(NodeId n) const {
  assert(n >= 0);
  if (static_cast<size_t>(n) < node_shard_.size()) {
    return node_shard_[static_cast<size_t>(n)];
  }
  return n % shards();
}

SimTime Scheduler::now() const {
  if (t_ctx.sched == this) {
    if (t_ctx.shard == kGlobalLane) return global_clock_;
    return shards_[static_cast<size_t>(t_ctx.shard)]->clock;
  }
  return hwm_;
}

Scheduler::EventId Scheduler::insert_into_shard(Shard& sh, SimTime t,
                                                Callback cb) {
  const uint64_t seq = sh.next_seq++;
  sh.q.insert(sh.arena.make(t, seq, nullptr, std::move(cb), uint64_t{0},
                            int32_t{-1}, static_cast<uint8_t>(kCallback)));
  return ((static_cast<uint64_t>(sh.index) + 1) << 56) | seq;
}

Scheduler::EventId Scheduler::insert_global(SimTime t, Callback cb) {
  const uint64_t seq = global_next_seq_++;
  global_q_.push(GlobalEvent{t, seq, std::move(cb)});
  return (kGlobalLaneByte << 56) | seq;
}

Scheduler::EventId Scheduler::at(SimTime t, Callback cb) {
  const SimTime floor = now();
  if (t < floor) t = floor;
  if (t_ctx.sched == this && t_ctx.shard != kGlobalLane) {
    return insert_into_shard(*shards_[static_cast<size_t>(t_ctx.shard)], t,
                             std::move(cb));
  }
  return insert_global(t, std::move(cb));
}

Scheduler::EventId Scheduler::at_node(NodeId node, SimTime t, Callback cb) {
  const SimTime floor = now();
  if (t < floor) t = floor;
  const int s = shard_of_node(node);
  // Legal callers: the target shard itself, or control / the global lane
  // (which runs with every shard quiescent).  A *different* shard must go
  // through the network instead — its insertion order would otherwise
  // depend on host timing.
  assert(t_ctx.sched != this || t_ctx.shard == kGlobalLane ||
         t_ctx.shard == s);
  return insert_into_shard(*shards_[static_cast<size_t>(s)], t,
                           std::move(cb));
}

bool Scheduler::cancel(EventId id) {
  if (id == 0) return false;
  const uint64_t lane = id >> 56;
  const uint64_t seq = id & kSeqMask;
  if (lane == kGlobalLaneByte) {
    if (seq == 0 || seq >= global_next_seq_) return false;
    return global_cancelled_.insert(seq).second;
  }
  const int s = static_cast<int>(lane) - 1;
  if (s < 0 || s >= shards()) return false;
  Shard& sh = *shards_[static_cast<size_t>(s)];
  // Only the owning shard or quiescent control may cancel.
  assert(!sim_parallel_phase() || (t_ctx.sched == this && t_ctx.shard == s));
  if (seq == 0 || seq >= sh.next_seq) return false;
  return sh.cancelled.insert(seq).second;
}

size_t Scheduler::pending() const {
  size_t queued = global_q_.size();
  size_t cancelled = global_cancelled_.size();
  for (const auto& sh : shards_) {
    queued += sh->q.size();
    cancelled += sh->cancelled.size();
  }
  return queued > cancelled ? queued - cancelled : 0;
}

uint64_t Scheduler::events_executed() const {
  uint64_t n = global_executed_;
  for (const auto& sh : shards_) n += sh->executed;
  return n;
}

SimTime Scheduler::global_min() {
  while (!global_q_.empty() &&
         global_cancelled_.erase(global_q_.top().seq) > 0) {
    global_q_.pop();
  }
  return global_q_.empty() ? CalendarQueue::kNoEvent : global_q_.top().t;
}

void Scheduler::run_global_at(SimTime t) {
  const ExecCtx saved = t_ctx;
  t_ctx = {this, kGlobalLane};
  global_clock_ = t;
  for (;;) {
    while (!global_q_.empty() &&
           global_cancelled_.erase(global_q_.top().seq) > 0) {
      global_q_.pop();
    }
    if (global_q_.empty() || global_q_.top().t != t) break;
    GlobalEvent ev = global_q_.top();
    global_q_.pop();
    global_executed_++;
    ev.cb();
  }
  t_ctx = saved;
}

void Scheduler::run_shard_window(Shard& sh, SimTime h) {
  const ExecCtx saved = t_ctx;
  t_ctx = {this, sh.index};
  SimTime batch_t = -1;
  EventNode* n;
  while ((n = sh.q.peek_min()) != nullptr && n->t < h) {
    sh.q.pop_min();
    if (n->kind == kCallback && !sh.cancelled.empty() &&
        sh.cancelled.erase(n->key) > 0) {
      sh.arena.destroy(n);
      continue;
    }
    assert(n->t >= sh.clock);
    sh.clock = n->t;
    if (n->t == batch_t) {
      sh.batched++;
    } else {
      batch_t = n->t;
    }
    if (n->kind == kIngress) {
      // Ingress sequencing is engine bookkeeping, not a simulation
      // callback: counted separately so events_executed() stays
      // comparable across engine generations.
      sh.ingress++;
      Callback deliver = std::move(n->cb);
      const NodeId to = n->node;
      const SimTime arrival = n->t;
      const uint64_t service = n->aux;
      sh.arena.destroy(n);
      ingress_sink_(to, arrival, service, std::move(deliver));
    } else {
      sh.executed++;
      Callback cb = std::move(n->cb);
      sh.arena.destroy(n);
      cb();
    }
  }
  t_ctx = saved;
}

void Scheduler::run_window(SimTime w, SimTime h) {
  windows_++;
  const int s = shards();
  int active = 0;
  if (s > 1) {
    for (auto& sh : shards_) {
      if (sh->q.min_time() < h) active++;
    }
    barriers_++;
  }
  (void)w;
  if (parallel_ && s > 1 && !lockstep_ && active > 1) {
    start_workers();
    {
      std::unique_lock<std::mutex> lk(work_mu_);
      work_h_ = h;
      work_remaining_ = s;
      work_generation_++;
      g_parallel_phase.store(true, std::memory_order_relaxed);
      work_cv_.notify_all();
      done_cv_.wait(lk, [this] { return work_remaining_ == 0; });
      g_parallel_phase.store(false, std::memory_order_relaxed);
    }
    // Serial execution inserts cross-shard posts directly (keyed, so the
    // insertion moment is irrelevant); only parallel windows buffer them.
    drain_inboxes();
  } else {
    for (auto& sh : shards_) run_shard_window(*sh, h);
  }
}

void Scheduler::drain_inboxes() {
  for (auto& sh : shards_) {
    std::vector<PostedMsg> msgs;
    {
      std::lock_guard<std::mutex> lk(sh->inbox_mu);
      msgs.swap(sh->inbox);
    }
    for (PostedMsg& m : msgs) {
      sh->q.insert(sh->arena.make(m.t, m.key, nullptr, std::move(m.cb),
                                  m.aux, m.node,
                                  static_cast<uint8_t>(kIngress)));
    }
  }
}

void Scheduler::post_message(NodeId from, NodeId to, SimTime arrival,
                             uint64_t service_ns, uint64_t msg_seq,
                             Callback deliver) {
  assert(from >= 0 && from < (1 << 18));
  assert(arrival >= now());
  const int s = shard_of_node(to);
  const uint64_t key = kIngressKeyBit |
                       (static_cast<uint64_t>(from) << 44) |
                       (msg_seq & ((1ull << 44) - 1));
  Shard& sh = *shards_[static_cast<size_t>(s)];
  if (sim_parallel_phase() &&
      !(t_ctx.sched == this && t_ctx.shard == s)) {
    std::lock_guard<std::mutex> lk(sh.inbox_mu);
    sh.inbox.push_back(PostedMsg{arrival, key, service_ns,
                                 static_cast<int32_t>(to),
                                 std::move(deliver)});
    return;
  }
  sh.q.insert(sh.arena.make(arrival, key, nullptr, std::move(deliver),
                            service_ns, static_cast<int32_t>(to),
                            static_cast<uint8_t>(kIngress)));
}

void Scheduler::set_lookahead(SimTime l) {
  if (l < 0) l = 0;
  if (lookahead_ == 0 || (l > 0 && l < lookahead_)) lookahead_ = l;
}

bool Scheduler::pump(SimTime limit) {
  const SimTime gmin = global_min();
  SimTime w = CalendarQueue::kNoEvent;
  for (auto& sh : shards_) w = std::min(w, sh->q.min_time());
  const SimTime first = std::min(gmin, w);
  if (first == CalendarQueue::kNoEvent || first > limit) return false;
  if (gmin <= w) {
    // Control quantum: every global-lane event at this timestamp runs
    // with all shards synced (they are strictly behind or at gmin).
    run_global_at(gmin);
    if (gmin > hwm_) hwm_ = gmin;
    return true;
  }
  SimTime h;
  if (lockstep_ || lookahead_ <= 0) {
    h = w + 1;
  } else {
    h = w + lookahead_;
  }
  if (gmin != CalendarQueue::kNoEvent) h = std::min(h, gmin);
  if (limit != CalendarQueue::kNoEvent) h = std::min(h, limit + 1);
  run_window(w, h);
  for (auto& sh : shards_) hwm_ = std::max(hwm_, sh->clock);
  return true;
}

bool Scheduler::step() { return pump(CalendarQueue::kNoEvent); }

void Scheduler::run() {
  while (pump(CalendarQueue::kNoEvent)) {
  }
}

void Scheduler::run_until(SimTime until) {
  while (pump(until)) {
  }
  if (hwm_ < until) hwm_ = until;
}

Scheduler::Stats Scheduler::stats() const {
  Stats st;
  st.shard_sync_barriers = barriers_;
  st.windows = windows_;
  for (const auto& sh : shards_) {
    st.events_dispatched += sh->executed + sh->ingress;
    st.events_batched += sh->batched;
    st.ingress_messages += sh->ingress;
    st.arena_bytes += sh->arena.bytes_reserved();
  }
  st.events_dispatched += global_executed_;
  return st;
}

void Scheduler::start_workers() {
  if (!workers_.empty()) return;
  workers_.reserve(shards_.size());
  for (int i = 0; i < shards(); i++) {
    workers_.emplace_back([this, i] { worker_main(i); });
  }
}

void Scheduler::stop_workers() {
  {
    std::lock_guard<std::mutex> lk(work_mu_);
    stopping_ = true;
    work_cv_.notify_all();
  }
  for (std::thread& t : workers_) t.join();
  workers_.clear();
  stopping_ = false;
}

void Scheduler::worker_main(int shard) {
  uint64_t seen = 0;
  for (;;) {
    SimTime h;
    {
      std::unique_lock<std::mutex> lk(work_mu_);
      work_cv_.wait(lk, [&] { return stopping_ || work_generation_ != seen; });
      if (stopping_) return;
      seen = work_generation_;
      h = work_h_;
    }
    run_shard_window(*shards_[static_cast<size_t>(shard)], h);
    {
      std::lock_guard<std::mutex> lk(work_mu_);
      if (--work_remaining_ == 0) done_cv_.notify_one();
    }
  }
}

}  // namespace gdedup
