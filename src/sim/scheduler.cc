#include "sim/scheduler.h"

namespace gdedup {

Scheduler::EventId Scheduler::at(SimTime t, Callback cb) {
  if (t < now_) t = now_;
  const EventId id = next_id_++;
  queue_.push(Event{t, id, std::move(cb)});
  return id;
}

bool Scheduler::cancel(EventId id) {
  if (id == 0 || id >= next_id_) return false;
  // Lazy cancellation: the event is skipped when popped.
  auto [it, inserted] = cancelled_.insert(id);
  (void)it;
  return inserted;
}

bool Scheduler::step() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    if (cancelled_.erase(ev.id) > 0) continue;
    assert(ev.t >= now_);
    now_ = ev.t;
    executed_++;
    ev.cb();
    return true;
  }
  return false;
}

void Scheduler::run() {
  while (step()) {
  }
}

void Scheduler::run_until(SimTime until) {
  while (!queue_.empty()) {
    const Event& top = queue_.top();
    if (cancelled_.count(top.id)) {
      cancelled_.erase(top.id);
      queue_.pop();
      continue;
    }
    if (top.t > until) break;
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.t;
    executed_++;
    ev.cb();
  }
  if (now_ < until) now_ = until;
}

}  // namespace gdedup
