#pragma once

// Time-series metric recorders for the timeline figures.
//
// RateSeries buckets event values (e.g. completed bytes) into fixed-width
// virtual-time bins, yielding the MB/s-vs-seconds curves of Figures 5(b)
// and 14.  GaugeSeries samples an instantaneous value on demand.

#include <cstdint>
#include <string>
#include <vector>

#include "sim/scheduler.h"

namespace gdedup {

class RateSeries {
 public:
  explicit RateSeries(SimTime bucket_width = kSecond)
      : width_(bucket_width) {}

  void add(SimTime t, double value);

  // One entry per bucket, units: value-per-second.
  std::vector<double> rates() const;

  SimTime bucket_width() const { return width_; }
  size_t buckets() const { return sums_.size(); }
  double total() const;

  // Mean rate over buckets [from, to).
  double mean_rate(size_t from, size_t to) const;

 private:
  SimTime width_;
  std::vector<double> sums_;
};

class GaugeSeries {
 public:
  void sample(SimTime t, double value) { points_.push_back({t, value}); }

  struct Point {
    SimTime t;
    double value;
  };
  const std::vector<Point>& points() const { return points_; }

 private:
  std::vector<Point> points_;
};

// Windowed op counter used by the dedup rate controller: "how many
// foreground I/Os completed in the last second?"
//
// Eviction contract: entries are retired in insertion (FIFO) order, not
// timestamp order.  Timestamps normally arrive monotonically; an
// out-of-order add() is kept alive until every entry inserted before it
// has expired, so stale stragglers can only over-count, never
// under-count.  Expiry happens in advance() — count() is a pure read
// that skips not-yet-advanced expired entries without mutating anything,
// so advance() and count() always agree for the same `now`.
class SlidingWindowCounter {
 public:
  explicit SlidingWindowCounter(SimTime window = kSecond) : window_(window) {}

  void add(SimTime t, uint64_t n = 1);

  // Retire entries older than `now - window` and occasionally compact
  // the backing store.  Call from the write path; without it the event
  // log grows without bound.
  void advance(SimTime now);

  uint64_t count(SimTime now) const;

 private:
  SimTime window_;
  std::vector<std::pair<SimTime, uint64_t>> events_;
  size_t head_ = 0;
  uint64_t live_ = 0;
};

}  // namespace gdedup
