#include "sim/network.h"

#include <cassert>

namespace gdedup {

Network::Network(Scheduler* sched, int num_nodes, NetworkConfig cfg)
    : sched_(sched), cfg_(cfg), nics_(static_cast<size_t>(num_nodes)) {
  // The hop latency is the conservative lookahead: no message can affect
  // another node sooner than one hop after its send.
  sched_->set_lookahead(cfg_.hop_latency);
  sched_->set_ingress_sink([this](NodeId to, SimTime arrival,
                                  uint64_t service_ns,
                                  Scheduler::Callback deliver) {
    // Runs on the destination shard, in (arrival, sender, seq) order among
    // all of this node's ingress: rx queueing resolves here.
    Nic& dst = nics_[static_cast<size_t>(to)];
    const SimTime rx_done =
        dst.rx.submit(arrival, static_cast<SimTime>(service_ns));
    if (deliver) sched_->at(rx_done, std::move(deliver));
  });
}

SimTime Network::send(NodeId from, NodeId to, uint64_t bytes,
                      Scheduler::Callback deliver) {
  assert(from >= 0 && from < num_nodes());
  assert(to >= 0 && to < num_nodes());
  const uint64_t wire_bytes = bytes + cfg_.per_message_overhead_bytes;
  Nic& src = nics_[static_cast<size_t>(from)];
  src.bytes += wire_bytes;

  const SimTime now = sched_->now();
  if (from == to) {
    const SimTime t = now + cfg_.loopback_latency;
    if (deliver) sched_->at(t, std::move(deliver));
    return t;
  }

  const SimTime service = xfer_ns(wire_bytes);
  const SimTime tx_done = src.tx.submit(now, service);
  if (drop_every_ > 0 && ++src.drop_counter % drop_every_ == 0) {
    // Lost in the fabric: the sender paid for the transmit, the receiver
    // never hears about it.  Loopback is exempt (kernel round trips do not
    // cross the switch).
    src.dropped++;
    return tx_done + cfg_.hop_latency;
  }
  const SimTime arrival = tx_done + cfg_.hop_latency + extra_latency_;
  sched_->post_message(from, to, arrival, static_cast<uint64_t>(service),
                       ++src.sends, std::move(deliver));
  return arrival;
}

uint64_t Network::dropped_messages() const {
  uint64_t total = 0;
  for (const Nic& n : nics_) total += n.dropped;
  return total;
}

uint64_t Network::total_bytes_sent() const {
  uint64_t total = 0;
  for (const Nic& n : nics_) total += n.bytes;
  return total;
}

}  // namespace gdedup
