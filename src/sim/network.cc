#include "sim/network.h"

#include <cassert>

namespace gdedup {

SimTime Network::send(NodeId from, NodeId to, uint64_t bytes,
                      Scheduler::Callback deliver) {
  assert(from >= 0 && from < num_nodes());
  assert(to >= 0 && to < num_nodes());
  const uint64_t wire_bytes = bytes + cfg_.per_message_overhead_bytes;
  total_bytes_ += wire_bytes;

  const SimTime now = sched_->now();
  if (from == to) {
    const SimTime t = now + cfg_.loopback_latency;
    if (deliver) sched_->at(t, std::move(deliver));
    return t;
  }

  const SimTime service = xfer_ns(wire_bytes);
  Nic& src = nics_[static_cast<size_t>(from)];
  Nic& dst = nics_[static_cast<size_t>(to)];
  const SimTime tx_done = src.tx.submit(now, service);
  if (drop_every_ > 0 && ++drop_counter_ % drop_every_ == 0) {
    // Lost in the fabric: the sender paid for the transmit, the receiver
    // never hears about it.  Loopback is exempt (kernel round trips do not
    // cross the switch).
    dropped_++;
    return tx_done + cfg_.hop_latency;
  }
  const SimTime arrival = tx_done + cfg_.hop_latency + extra_latency_;
  const SimTime rx_done = dst.rx.submit(arrival, service);
  if (deliver) sched_->at(rx_done, std::move(deliver));
  return rx_done;
}

}  // namespace gdedup
