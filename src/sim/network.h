#pragma once

// Cluster network model.
//
// Full-bisection fabric: each node has a full-duplex NIC (separate tx/rx
// FIFO bandwidth resources) and every pair of nodes is one switch hop
// apart.  A message reserves tx bandwidth at the sender, propagates after
// the hop latency, reserves rx bandwidth at the receiver, and the delivery
// callback runs at rx completion.  Loopback (same node) costs only a small
// kernel round trip.
//
// Sharding note: send() does only sender-side work (tx reservation,
// per-node byte/drop accounting) and hands the message to the scheduler's
// receiver-sequenced ingress (Scheduler::post_message).  The rx bandwidth
// reservation happens on the *destination* shard when the ingress record
// is popped, so receiver-side contention resolves in (arrival, sender,
// sequence) order — a pure function of virtual time, independent of shard
// count.  The network also registers its hop latency as the scheduler's
// conservative lookahead.  DESIGN.md §9 covers the determinism argument.

#include <cstdint>
#include <vector>

#include "sim/resource.h"
#include "sim/scheduler.h"

namespace gdedup {

struct NetworkConfig {
  double nic_bw_bytes_per_sec = 10.0 * 1000 * 1000 * 1000 / 8;  // 10GbE
  SimTime hop_latency = usec(50);
  SimTime loopback_latency = usec(5);
  uint64_t per_message_overhead_bytes = 256;  // headers, framing
};

class Network {
 public:
  Network(Scheduler* sched, int num_nodes, NetworkConfig cfg);

  int num_nodes() const { return static_cast<int>(nics_.size()); }

  // Deliver `deliver` on `to` after transferring `bytes` from `from`.
  // Returns the estimated fabric arrival time (rx queueing resolves later
  // on the destination shard; no caller depends on the exact value).
  SimTime send(NodeId from, NodeId to, uint64_t bytes,
               Scheduler::Callback deliver);

  // --- fault injection (crash-schedule campaigns) ---
  // Extra one-way latency added to every non-loopback message.  Only set
  // from control-plane code while shards are synced.
  void set_extra_latency(SimTime d) { extra_latency_ = d; }
  SimTime extra_latency() const { return extra_latency_; }
  // Drop every nth non-loopback message *per sender* (deterministic
  // per-node counters, so the same schedule loses the same messages at
  // any shard count).  0 disables.
  void set_drop_every(uint32_t n) { drop_every_ = n; }
  uint64_t dropped_messages() const;

  // Total bytes ever offered to the fabric (including overhead).
  uint64_t total_bytes_sent() const;

  // Cumulative tx busy time of one node's NIC (utilization sampling).
  uint64_t tx_busy_ns(NodeId n) const {
    return nics_[static_cast<size_t>(n)].tx.cumulative_busy_ns();
  }

 private:
  // Per-node state only ever touched from that node's shard (send touches
  // the sender's, the ingress sink touches the receiver's), so parallel
  // windows need no locks here.
  struct Nic {
    FifoResource tx;
    FifoResource rx;
    uint64_t bytes = 0;         // wire bytes offered by this sender
    uint64_t sends = 0;         // per-sender message sequence (ingress key)
    uint64_t drop_counter = 0;  // per-sender deterministic drop phase
    uint64_t dropped = 0;
  };

  SimTime xfer_ns(uint64_t bytes) const {
    return static_cast<SimTime>(static_cast<double>(bytes) /
                                cfg_.nic_bw_bytes_per_sec * kSecond);
  }

  Scheduler* sched_;
  NetworkConfig cfg_;
  std::vector<Nic> nics_;
  SimTime extra_latency_ = 0;
  uint32_t drop_every_ = 0;
};

}  // namespace gdedup
