#pragma once

// Cluster network model.
//
// Full-bisection fabric: each node has a full-duplex NIC (separate tx/rx
// FIFO bandwidth resources) and every pair of nodes is one switch hop
// apart.  A message reserves tx bandwidth at the sender, propagates after
// the hop latency, reserves rx bandwidth at the receiver, and the delivery
// callback runs at rx completion.  Loopback (same node) costs only a small
// kernel round trip.
//
// Approximation note: rx bandwidth is reserved eagerly at send time (the
// scheduler learns the delivery time immediately).  With FIFO resources
// and latencies that are identical across pairs this matches a per-packet
// simulation for our traffic patterns, at a fraction of the event count.

#include <cstdint>
#include <vector>

#include "sim/resource.h"
#include "sim/scheduler.h"

namespace gdedup {

using NodeId = int;

struct NetworkConfig {
  double nic_bw_bytes_per_sec = 10.0 * 1000 * 1000 * 1000 / 8;  // 10GbE
  SimTime hop_latency = usec(50);
  SimTime loopback_latency = usec(5);
  uint64_t per_message_overhead_bytes = 256;  // headers, framing
};

class Network {
 public:
  Network(Scheduler* sched, int num_nodes, NetworkConfig cfg)
      : sched_(sched), cfg_(cfg), nics_(static_cast<size_t>(num_nodes)) {}

  int num_nodes() const { return static_cast<int>(nics_.size()); }

  // Deliver `deliver` on `to` after transferring `bytes` from `from`.
  // Returns the delivery time.
  SimTime send(NodeId from, NodeId to, uint64_t bytes,
               Scheduler::Callback deliver);

  // --- fault injection (crash-schedule campaigns) ---
  // Extra one-way latency added to every non-loopback message.
  void set_extra_latency(SimTime d) { extra_latency_ = d; }
  SimTime extra_latency() const { return extra_latency_; }
  // Drop every nth non-loopback message (deterministic counter, so the
  // same schedule loses the same messages).  0 disables.
  void set_drop_every(uint32_t n) { drop_every_ = n; }
  uint64_t dropped_messages() const { return dropped_; }

  // Total bytes ever offered to the fabric (including overhead).
  uint64_t total_bytes_sent() const { return total_bytes_; }

  // Cumulative tx busy time of one node's NIC (utilization sampling).
  uint64_t tx_busy_ns(NodeId n) const {
    return nics_[static_cast<size_t>(n)].tx.cumulative_busy_ns();
  }

 private:
  struct Nic {
    FifoResource tx;
    FifoResource rx;
  };

  SimTime xfer_ns(uint64_t bytes) const {
    return static_cast<SimTime>(static_cast<double>(bytes) /
                                cfg_.nic_bw_bytes_per_sec * kSecond);
  }

  Scheduler* sched_;
  NetworkConfig cfg_;
  std::vector<Nic> nics_;
  uint64_t total_bytes_ = 0;
  SimTime extra_latency_ = 0;
  uint32_t drop_every_ = 0;
  uint64_t drop_counter_ = 0;
  uint64_t dropped_ = 0;
};

}  // namespace gdedup
