#pragma once

// Per-node CPU model.
//
// A pool of identical cores; work items (fingerprinting, erasure-coding
// parity, compression, crc) reserve core time.  Costs are expressed per
// byte so callers just say what they did to how much data.  The busy
// counter feeds the CPU% series in the Figure 10 reproduction.

#include <cstdint>

#include "sim/resource.h"
#include "sim/scheduler.h"

namespace gdedup {

struct CpuConfig {
  int cores = 12;  // paper testbed: Xeon E5-2690, 12 cores per node
  // Calibrated throughputs for the work the dedup path adds.
  double sha256_bytes_per_sec = 1.5e9;
  double sha1_bytes_per_sec = 2.0e9;
  double ec_parity_bytes_per_sec = 3.0e9;
  double compress_bytes_per_sec = 400e6;
  double crc_bytes_per_sec = 8e9;
  SimTime op_fixed_cost = usec(15);  // request dispatch / context switches
};

class CpuModel {
 public:
  CpuModel(Scheduler* sched, CpuConfig cfg)
      : sched_(sched), cfg_(cfg), pool_(cfg.cores) {}

  // Generic execution of `cost_ns` of single-core work.
  SimTime execute(SimTime cost_ns, Scheduler::Callback done = nullptr) {
    const SimTime t = pool_.submit(sched_->now(), cost_ns);
    if (done) sched_->at(t, std::move(done));
    return t;
  }

  SimTime fingerprint_cost(uint64_t bytes, bool sha1 = false) const {
    const double bw = sha1 ? cfg_.sha1_bytes_per_sec : cfg_.sha256_bytes_per_sec;
    return per_bytes(bytes, bw);
  }
  SimTime ec_parity_cost(uint64_t bytes) const {
    return per_bytes(bytes, cfg_.ec_parity_bytes_per_sec);
  }
  SimTime compress_cost(uint64_t bytes) const {
    return per_bytes(bytes, cfg_.compress_bytes_per_sec);
  }
  SimTime crc_cost(uint64_t bytes) const {
    return per_bytes(bytes, cfg_.crc_bytes_per_sec);
  }
  SimTime op_fixed_cost() const { return cfg_.op_fixed_cost; }

  int cores() const { return pool_.servers(); }
  uint64_t cumulative_busy_ns() const { return pool_.cumulative_busy_ns(); }

  // Mean CPU utilization over a window bounded by two busy-counter samples.
  double utilization(uint64_t busy_before, uint64_t busy_after, SimTime t0,
                     SimTime t1) const {
    return PooledResource::utilization(busy_before, busy_after, t0, t1,
                                       pool_.servers());
  }

 private:
  SimTime per_bytes(uint64_t bytes, double bw) const {
    return static_cast<SimTime>(static_cast<double>(bytes) / bw * kSecond);
  }

  Scheduler* sched_;
  CpuConfig cfg_;
  PooledResource pool_;
};

}  // namespace gdedup
