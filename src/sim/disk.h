#pragma once

// SSD device model.
//
// Service time = per-op latency + size / bandwidth, FIFO queued — a
// deliberately simple model calibrated to the SATA-SSD class devices of
// the paper's testbed (SK Hynix 480GB).  The journal write amplification
// of the paper's FileStore-era OSDs is charged as a multiplier on write
// service time.

#include <cstdint>

#include "sim/resource.h"
#include "sim/scheduler.h"

namespace gdedup {

struct SsdConfig {
  double read_bw_bytes_per_sec = 520.0 * 1024 * 1024;
  double write_bw_bytes_per_sec = 480.0 * 1024 * 1024;
  SimTime read_latency = usec(90);
  SimTime write_latency = usec(70);
  double journal_write_amplification = 1.3;  // FileStore journal on same SSD
};

class SsdModel {
 public:
  SsdModel(Scheduler* sched, SsdConfig cfg) : sched_(sched), cfg_(cfg) {}

  // Returns the completion time; also invokes `done` then (if non-null).
  SimTime read(uint64_t bytes, Scheduler::Callback done = nullptr) {
    const SimTime service =
        cfg_.read_latency + bytes_to_ns(bytes, cfg_.read_bw_bytes_per_sec);
    const SimTime t = queue_.submit(sched_->now(), service);
    if (done) sched_->at(t, std::move(done));
    reads_++;
    read_bytes_ += bytes;
    return t;
  }

  SimTime write(uint64_t bytes, Scheduler::Callback done = nullptr) {
    const SimTime xfer = static_cast<SimTime>(
        bytes_to_ns(bytes, cfg_.write_bw_bytes_per_sec) *
        cfg_.journal_write_amplification);
    const SimTime t = queue_.submit(sched_->now(), cfg_.write_latency + xfer);
    if (done) sched_->at(t, std::move(done));
    writes_++;
    write_bytes_ += bytes;
    return t;
  }

  SimTime backlog() const { return queue_.backlog(sched_->now()); }
  uint64_t cumulative_busy_ns() const { return queue_.cumulative_busy_ns(); }
  uint64_t read_ops() const { return reads_; }
  uint64_t write_ops() const { return writes_; }
  uint64_t read_bytes() const { return read_bytes_; }
  uint64_t write_bytes() const { return write_bytes_; }

 private:
  static SimTime bytes_to_ns(uint64_t bytes, double bw) {
    return static_cast<SimTime>(static_cast<double>(bytes) / bw * kSecond);
  }

  Scheduler* sched_;
  SsdConfig cfg_;
  FifoResource queue_;
  uint64_t reads_ = 0;
  uint64_t writes_ = 0;
  uint64_t read_bytes_ = 0;
  uint64_t write_bytes_ = 0;
};

}  // namespace gdedup
