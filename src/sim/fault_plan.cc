#include "sim/fault_plan.h"

#include <cstdio>

namespace gdedup {

const char* fault_action_name(FaultAction a) {
  switch (a) {
    case FaultAction::kCrashOsd: return "crash_osd";
    case FaultAction::kReviveOsd: return "revive_osd";
    case FaultAction::kRecover: return "recover";
    case FaultAction::kGc: return "gc";
    case FaultAction::kDeepScrub: return "deep_scrub";
    case FaultAction::kArmEnginePoint: return "arm_engine_point";
    case FaultAction::kArmOsdPoint: return "arm_osd_point";
    case FaultAction::kNetDelay: return "net_delay";
    case FaultAction::kNetDrop: return "net_drop";
    case FaultAction::kNetHeal: return "net_heal";
  }
  return "?";
}

std::string FaultEvent::describe() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "t=%+10lldus %-16s osd=%-3d arg=%-3d mode=%d dur=%lldus",
                static_cast<long long>(at / kMicrosecond),
                fault_action_name(action), osd, arg, mode,
                static_cast<long long>(dur / kMicrosecond));
  return buf;
}

std::string FaultPlan::describe() const {
  std::string out = "fault plan seed=" + std::to_string(seed) + " events=" +
                    std::to_string(events.size()) + "\n";
  for (const FaultEvent& ev : events) {
    out += "  " + ev.describe() + "\n";
  }
  return out;
}

}  // namespace gdedup
