#pragma once

// Deterministic worker-pool offload for the real-byte kernels.
//
// The simulator carries real bytes, so fingerprinting, CDC chunking, CRC,
// EC parity and compression cost host wall-clock even though their
// *virtual* cost is already modelled by CpuModel::execute().  ExecPool
// decouples the two: the event loop submits a pure kernel job at issue
// time (when the virtual cost is charged) and joins its result inside the
// scheduler callback that dispatches the virtual-time completion — never
// earlier, never from a new event.  Host threads race ahead on the byte
// work while virtual time advances exactly as in serial mode.
//
// Determinism contract (see DESIGN.md §8):
//   * Jobs are pure: closures over immutable COW `common::Buffer` slices
//     producing a result blob.  No scheduler, RNG, or perf-counter access
//     from workers.
//   * Joins piggyback *pre-existing* scheduler callbacks.  Thread count
//     must never create, cancel or reorder events.
//   * With threads <= 1 there are no workers at all: submit() defers the
//     closure and join() runs it inline — byte-for-byte today's serial
//     compute-at-completion path.
//   * The closure is destroyed at join(), on the event-loop thread, in
//     both modes, so Buffer refcounts (observed by COW detach) evolve
//     identically regardless of worker timing.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

namespace gdedup {

// The five offloadable kernels (plus CDC chunking split out from
// fingerprinting); indexes the per-kernel stats breakdown.
enum class Kernel : int {
  kFingerprint = 0,
  kCdcChunk,
  kCrc,
  kEcEncode,
  kEcDecode,
  kCompress,
  kWeakHash,
  kCount,
};

const char* kernel_name(Kernel k);

class ExecPool {
 public:
  // Job lifecycle: queued -> claimed (by a worker, or stolen by join) ->
  // done.  The CAS from queued to claimed is what makes join() safe to
  // call at any point relative to worker progress.
  struct Job {
    std::function<void()> fn;
    std::atomic<int> state{0};  // kQueued / kClaimed / kDone
    Kernel kernel = Kernel::kFingerprint;
  };
  using Token = std::shared_ptr<Job>;

  struct KernelStats {
    uint64_t jobs = 0;     // jobs submitted for this kernel
    uint64_t busy_ns = 0;  // host wall-clock spent executing them
  };

  // threads <= 1 builds a serial pool: no worker threads are spawned and
  // every job runs inline at join time.
  explicit ExecPool(int threads = 1);

  // Parallel pools drain: every submitted job has executed (and its
  // result is visible) by the time the destructor returns.  Unjoined
  // tokens stay valid — Job state is owned by shared_ptr — but join() on
  // a destroyed pool is undefined; owners must outlive their futures.
  ~ExecPool();

  ExecPool(const ExecPool&) = delete;
  ExecPool& operator=(const ExecPool&) = delete;

  // GDEDUP_EXEC_THREADS, clamped to [1, 64]; default 1 (serial).
  static int env_threads();

  int threads() const { return threads_; }
  bool parallel() const { return !workers_.empty(); }

  // Submit a pure job.  In parallel mode a worker may start it
  // immediately, so everything it reads must already be immutable.
  Token submit(Kernel k, std::function<void()> fn);

  // Block until the job has run (stealing it onto the caller if no worker
  // claimed it yet), then destroy the closure.  Event-loop thread only.
  void join(const Token& t);

  KernelStats kernel_stats(Kernel k) const;
  // Jobs that actually ran on a worker thread (0 in serial mode).
  uint64_t jobs_offloaded() const {
    return jobs_offloaded_.load(std::memory_order_relaxed);
  }

 private:
  enum : int { kQueued = 0, kClaimed = 1, kDone = 2 };

  void worker_loop();
  void run_job(Job& j);

  int threads_ = 1;
  std::vector<std::thread> workers_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;  // workers wait for queue / stop
  std::condition_variable done_cv_;  // join waits for a claimed job
  std::deque<Token> queue_;
  bool stop_ = false;

  std::atomic<uint64_t> jobs_offloaded_{0};
  std::atomic<uint64_t> kernel_jobs_[static_cast<int>(Kernel::kCount)] = {};
  std::atomic<uint64_t> kernel_busy_ns_[static_cast<int>(Kernel::kCount)] = {};
};

// Typed future over an ExecPool job.  Handles the null-pool case (unit
// fixtures without a cluster) with the same deferred-to-take semantics as
// a serial pool, so call sites read identically everywhere.
template <typename T>
class KernelFuture {
 public:
  KernelFuture() = default;

  template <typename Fn>
  KernelFuture(ExecPool* pool, Kernel k, Fn fn)
      : out_(std::make_shared<std::optional<T>>()) {
    auto out = out_;
    std::function<void()> job = [out, fn = std::move(fn)]() mutable {
      out->emplace(fn());
    };
    if (pool != nullptr) {
      pool_ = pool;
      token_ = pool->submit(k, std::move(job));
    } else {
      inline_ = std::move(job);
    }
  }

  bool valid() const { return out_ != nullptr; }

  // Join (or run inline) and move the result out.  Call exactly once, on
  // the event-loop thread, inside the virtual-time completion callback.
  T take() {
    if (pool_ != nullptr) {
      pool_->join(token_);
      token_.reset();
      pool_ = nullptr;
    } else if (inline_) {
      inline_();
      inline_ = nullptr;
    }
    T v = std::move(**out_);
    out_.reset();
    return v;
  }

 private:
  std::shared_ptr<std::optional<T>> out_;
  ExecPool* pool_ = nullptr;
  ExecPool::Token token_;
  std::function<void()> inline_;
};

template <typename T, typename Fn>
KernelFuture<T> kernel_async(ExecPool* pool, Kernel k, Fn fn) {
  return KernelFuture<T>(pool, k, std::move(fn));
}

}  // namespace gdedup
