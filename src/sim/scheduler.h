#pragma once

// Sharded discrete-event scheduler with a virtual nanosecond clock.
//
// The whole cluster runs inside one Scheduler: client ops, OSD service
// loops, background dedup passes and recovery are all events.  Events are
// partitioned into per-node *shards* (conservative parallel DES): each
// shard owns a calendar queue and executes its events in strict (time,
// sequence) order, and shards only advance together through bounded
// *windows* [W, W+L) where L is the network lookahead (the minimum
// non-loopback link latency).  Cross-node messages never touch another
// shard's queue directly: they are posted as *ingress* records sequenced
// at the receiver by (arrival time, sender, per-sender message sequence),
// so delivery order — and therefore every virtual-time observable — is a
// pure function of virtual time, independent of the shard count and of
// host-thread timing.  DESIGN.md §9 develops the determinism argument.
//
// Control-plane code (bench harnesses, Cluster::recover, fault planners)
// schedules from outside any shard; those events land on a *global lane*
// that executes exclusively, with every shard synced at the event's
// timestamp, so configuration changes are atomic across shards.
//
// The default is one shard — byte-identical behaviour at any shard count
// is the contract, enforced by ctest (test_sim_shards).  Shard windows
// execute serially unless GDEDUP_SIM_PARALLEL enables the worker threads.

#include <atomic>
#include <cassert>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <shared_mutex>
#include <thread>
#include <unordered_set>
#include <vector>

#include "sim/calendar_queue.h"
#include "sim/time.h"

namespace gdedup {

using NodeId = int;

// True while shard workers are concurrently executing a window.  Gates the
// cross-shard read locks in the object store / OSD (serial execution pays
// only this one relaxed load per access).
bool sim_parallel_phase();

class Scheduler {
 public:
  using Callback = std::function<void()>;
  using EventId = uint64_t;

  Scheduler() : Scheduler(1) {}
  explicit Scheduler(int shards);
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  // GDEDUP_SIM_SHARDS (default 1, clamped to [1, 64]).
  static int env_shards();
  // GDEDUP_SIM_PARALLEL: run shard windows on worker threads.
  static bool env_parallel();

  int shards() const { return static_cast<int>(shards_.size()); }

  // Node -> shard placement.  Unset: node % shards().
  void set_node_shard_map(std::vector<int> node_to_shard);
  int shard_of_node(NodeId n) const;

  // Inside an event: that event's virtual time.  Outside: the high-water
  // mark of executed virtual time (== the `until` of the last run_until).
  SimTime now() const;

  // Schedule `cb` at absolute time t (clamped to now).  From inside an
  // event the new event joins the calling shard; from control-plane code
  // it lands on the global lane.
  EventId at(SimTime t, Callback cb);

  // Schedule `cb` after a relative delay (>= 0).
  EventId after(SimTime delay, Callback cb) {
    return at(now() + (delay < 0 ? 0 : delay), std::move(cb));
  }

  // Schedule onto `node`'s shard regardless of the calling context (used
  // where control-plane code starts node-affine services: engine ticks,
  // client op timeout timers).
  EventId at_node(NodeId node, SimTime t, Callback cb);
  EventId after_node(NodeId node, SimTime delay, Callback cb) {
    return at_node(node, now() + (delay < 0 ? 0 : delay), std::move(cb));
  }

  // Best-effort cancel; returns false if unknown.  Lazy: the event is
  // skipped when popped.
  bool cancel(EventId id);

  bool empty() const { return pending() == 0; }
  size_t pending() const;

  // Advance one quantum: either every global-lane event at the next
  // control timestamp, or one shard window.  Returns false if idle.
  bool step();

  // Drain every event (stops when all queues empty).
  void run();

  // Run events with t <= until; afterwards now() == until (even if idle).
  void run_until(SimTime until);

  void run_for(SimTime duration) { run_until(now() + duration); }

  // Callbacks dispatched so far (cancelled events and internal ingress-
  // sequencing records don't count, so the number stays comparable across
  // engine generations).  Part of the determinism contract: two runs of
  // the same seed must match, at any shard count.
  uint64_t events_executed() const;

  // --- sharded-engine controls ---

  // Conservative lookahead: cross-node messages arrive at least this much
  // after their send time, so shards may run `lookahead` ahead of each
  // other inside a window.  Registered by the Network from its minimum
  // hop latency; 0 / unset forces single-timestamp (lockstep) windows.
  void set_lookahead(SimTime l);
  SimTime lookahead() const { return lookahead_; }

  // Lockstep: windows cover exactly one timestamp.  Required whenever
  // in-window code may mutate state that another shard's events peek at
  // event granularity (fault injection hooks, recovery installs).
  void set_lockstep(bool on) { lockstep_ = on; }
  bool lockstep() const { return lockstep_; }

  // Force worker threads on/off (overrides GDEDUP_SIM_PARALLEL).
  void set_parallel(bool on) { parallel_ = on; }

  // --- receiver-sequenced message ingress (used by Network) ---
  // The sink resolves receiver-side resource contention: it runs on the
  // destination shard, in (arrival, sender, msg_seq) order among all of
  // that node's ingress, and schedules the actual delivery callback.
  using IngressSink =
      std::function<void(NodeId to, SimTime arrival, uint64_t service_ns,
                         Callback deliver)>;
  void set_ingress_sink(IngressSink sink) { ingress_sink_ = std::move(sink); }

  // Post a cross-node message for delivery at `arrival` (must be >= the
  // caller's now() + lookahead).  `msg_seq` must be monotone per sender.
  void post_message(NodeId from, NodeId to, SimTime arrival,
                    uint64_t service_ns, uint64_t msg_seq, Callback deliver);

  struct Stats {
    uint64_t events_dispatched = 0;  // callbacks + ingress dispatches
    uint64_t events_batched = 0;     // dispatched in a same-timestamp run
    uint64_t ingress_messages = 0;   // receiver-sequenced message records
    uint64_t shard_sync_barriers = 0;  // windows synced across > 1 shard
    uint64_t windows = 0;            // shard windows pumped
    uint64_t arena_bytes = 0;        // event-slab bytes reserved
  };
  Stats stats() const;

 private:
  static constexpr uint64_t kIngressKeyBit = 1ull << 62;
  static constexpr int kGlobalLane = -1;
  enum NodeKind : uint8_t { kCallback = 0, kIngress = 1 };

  struct PostedMsg {  // parallel-mode inbox record (drained at barriers)
    SimTime t;
    uint64_t key;
    uint64_t aux;
    int32_t node;
    Callback cb;
  };

  struct Shard {
    explicit Shard(int idx) : index(idx), q(&arena) {}
    int index;
    EventArena arena;
    CalendarQueue q;
    SimTime clock = 0;
    uint64_t next_seq = 1;
    uint64_t executed = 0;
    uint64_t batched = 0;
    uint64_t ingress = 0;
    std::unordered_set<uint64_t> cancelled;
    std::mutex inbox_mu;
    std::vector<PostedMsg> inbox;
  };

  struct GlobalEvent {
    SimTime t;
    uint64_t seq;
    Callback cb;
  };
  struct GlobalLater {
    bool operator()(const GlobalEvent& a, const GlobalEvent& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };

  EventId insert_into_shard(Shard& sh, SimTime t, Callback cb);
  EventId insert_global(SimTime t, Callback cb);
  SimTime global_min();  // purges cancelled heads
  void run_global_at(SimTime t);
  void run_shard_window(Shard& sh, SimTime h);
  void run_window(SimTime w, SimTime h);
  void drain_inboxes();
  bool pump(SimTime limit);
  void start_workers();
  void stop_workers();
  void worker_main(int shard);

  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<int> node_shard_;
  SimTime lookahead_ = 0;
  bool lockstep_ = false;
  bool parallel_ = false;

  // Global (control) lane.
  std::priority_queue<GlobalEvent, std::vector<GlobalEvent>, GlobalLater>
      global_q_;
  uint64_t global_next_seq_ = 1;
  uint64_t global_executed_ = 0;
  SimTime global_clock_ = 0;
  std::unordered_set<uint64_t> global_cancelled_;

  SimTime hwm_ = 0;  // max(virtual time executed, explicit run_until marks)
  uint64_t windows_ = 0;
  uint64_t barriers_ = 0;

  IngressSink ingress_sink_;

  // Parallel window execution (lazy-started persistent workers).
  std::vector<std::thread> workers_;
  std::mutex work_mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  uint64_t work_generation_ = 0;
  SimTime work_h_ = 0;
  int work_remaining_ = 0;
  bool stopping_ = false;
};

// Gated locks: no-ops unless a parallel window is executing.  Cross-shard
// readers (peeks documented in DESIGN.md §9) take the shared side; owners
// take the exclusive side around structural mutation.
class MaybeSharedLock {
 public:
  explicit MaybeSharedLock(std::shared_mutex& m) {
    if (sim_parallel_phase()) {
      m_ = &m;
      m_->lock_shared();
    }
  }
  ~MaybeSharedLock() {
    if (m_ != nullptr) m_->unlock_shared();
  }
  MaybeSharedLock(const MaybeSharedLock&) = delete;
  MaybeSharedLock& operator=(const MaybeSharedLock&) = delete;

 private:
  std::shared_mutex* m_ = nullptr;
};

class MaybeUniqueLock {
 public:
  explicit MaybeUniqueLock(std::shared_mutex& m) {
    if (sim_parallel_phase()) {
      m_ = &m;
      m_->lock();
    }
  }
  ~MaybeUniqueLock() {
    if (m_ != nullptr) m_->unlock();
  }
  MaybeUniqueLock(const MaybeUniqueLock&) = delete;
  MaybeUniqueLock& operator=(const MaybeUniqueLock&) = delete;

 private:
  std::shared_mutex* m_ = nullptr;
};

}  // namespace gdedup
