#pragma once

// Discrete-event scheduler with a virtual nanosecond clock.
//
// The whole cluster runs inside one Scheduler: client ops, OSD service
// loops, background dedup passes and recovery are all events.  Execution
// is strictly ordered by (time, insertion sequence), so every experiment
// is bit-for-bit reproducible from its seed.

#include <cassert>
#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

namespace gdedup {

using SimTime = int64_t;  // nanoseconds since simulation start

constexpr SimTime kNanosecond = 1;
constexpr SimTime kMicrosecond = 1000;
constexpr SimTime kMillisecond = 1000 * 1000;
constexpr SimTime kSecond = 1000LL * 1000 * 1000;

inline SimTime usec(double u) { return static_cast<SimTime>(u * kMicrosecond); }
inline SimTime msec(double m) { return static_cast<SimTime>(m * kMillisecond); }
inline SimTime sec(double s) { return static_cast<SimTime>(s * kSecond); }

class Scheduler {
 public:
  using Callback = std::function<void()>;
  using EventId = uint64_t;

  SimTime now() const { return now_; }

  // Schedule `cb` at absolute time t (clamped to now).
  EventId at(SimTime t, Callback cb);

  // Schedule `cb` after a relative delay (>= 0).
  EventId after(SimTime delay, Callback cb) {
    return at(now_ + (delay < 0 ? 0 : delay), std::move(cb));
  }

  // Best-effort cancel; returns false if already fired or unknown.
  bool cancel(EventId id);

  bool empty() const { return queue_.size() == cancelled_.size(); }
  size_t pending() const { return queue_.size() - cancelled_.size(); }

  // Run the next event.  Returns false if none pending.
  bool step();

  // Drain every event (stops when the queue empties).
  void run();

  // Run events with t <= until; afterwards now() == until (even if idle).
  void run_until(SimTime until);

  void run_for(SimTime duration) { run_until(now_ + duration); }

  // Callbacks dispatched so far (cancelled events don't count).  Part of
  // the determinism contract: two runs of the same seed must match.
  uint64_t events_executed() const { return executed_; }

 private:
  struct Event {
    SimTime t;
    EventId id;
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.id > b.id;  // FIFO among same-time events
    }
  };

  SimTime now_ = 0;
  EventId next_id_ = 1;
  uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_set<EventId> cancelled_;
};

}  // namespace gdedup
