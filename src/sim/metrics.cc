#include "sim/metrics.h"

#include <cassert>
#include <cstddef>

namespace gdedup {

void RateSeries::add(SimTime t, double value) {
  assert(t >= 0);
  const size_t bucket = static_cast<size_t>(t / width_);
  if (bucket >= sums_.size()) sums_.resize(bucket + 1, 0.0);
  sums_[bucket] += value;
}

std::vector<double> RateSeries::rates() const {
  std::vector<double> out(sums_.size());
  const double per_sec = static_cast<double>(kSecond) / static_cast<double>(width_);
  for (size_t i = 0; i < sums_.size(); i++) out[i] = sums_[i] * per_sec;
  return out;
}

double RateSeries::total() const {
  double t = 0;
  for (double v : sums_) t += v;
  return t;
}

double RateSeries::mean_rate(size_t from, size_t to) const {
  if (to > sums_.size()) to = sums_.size();
  if (from >= to) return 0.0;
  double sum = 0;
  for (size_t i = from; i < to; i++) sum += sums_[i];
  const double span_sec =
      static_cast<double>(to - from) * static_cast<double>(width_) / kSecond;
  return sum / span_sec;
}

void SlidingWindowCounter::add(SimTime t, uint64_t n) {
  events_.emplace_back(t, n);
  live_ += n;
}

void SlidingWindowCounter::advance(SimTime now) {
  const SimTime cutoff = now - window_;
  while (head_ < events_.size() && events_[head_].first < cutoff) {
    live_ -= events_[head_].second;
    head_++;
  }
  // Compact occasionally so the vector does not grow without bound.
  if (head_ > 4096 && head_ * 2 > events_.size()) {
    events_.erase(events_.begin(),
                  events_.begin() + static_cast<ptrdiff_t>(head_));
    head_ = 0;
  }
}

uint64_t SlidingWindowCounter::count(SimTime now) const {
  // Same FIFO-prefix rule as advance(), but as a pure read: walk the
  // not-yet-retired prefix and subtract whatever advance() would evict.
  const SimTime cutoff = now - window_;
  uint64_t n = live_;
  for (size_t i = head_; i < events_.size() && events_[i].first < cutoff; i++)
    n -= events_[i].second;
  return n;
}

}  // namespace gdedup
