#pragma once

// Seeded fault schedules.
//
// A FaultPlan is a deterministic list of fault events in virtual time:
// OSD kills and restarts, network degradation, one-shot crash points armed
// inside the dedup engine or the OSD replication/recovery paths, and
// concurrent maintenance passes (GC, deep scrub) thrown in mid-storm.  The
// sim layer defines only the vocabulary; topology-aware schedule generation
// lives in cluster/fault_planner.h and the interpreter that applies events
// to a live cluster lives in rados/fault_campaign.h.
//
// Everything here is plain data so that the same seed always renders the
// same byte-identical schedule.

#include <cstdint>
#include <string>
#include <vector>

#include "sim/scheduler.h"

namespace gdedup {

enum class FaultAction : uint8_t {
  kCrashOsd,        // kill -9: volatile state lost, in-flight ops vanish
  kReviveOsd,       // disarm crash points, then restart the downed OSD
                    // (osd == -1 means "whichever OSD an armed point
                    // crashed"; arg bit 0 set means wipe the store first)
  kRecover,         // run cluster backfill
  kGc,              // run the garbage collector mid-storm
  kDeepScrub,       // run a deep scrub pass mid-storm
  kArmEnginePoint,  // arm a one-shot dedup-tier FailurePoint
                    // (arg: point index; mode: 0 abort flush, 1 crash OSD)
  kArmOsdPoint,     // arm a one-shot OsdFailurePoint (arg: point index);
                    // firing always crashes the OSD that hit it
  kNetDelay,        // add `dur` extra one-way latency to every message
  kNetDrop,         // drop every `arg`-th message
  kNetHeal,         // clear the extra latency and the drop rule
};

const char* fault_action_name(FaultAction a);

struct FaultEvent {
  SimTime at = 0;  // relative to the start of the fault phase
  FaultAction action = FaultAction::kCrashOsd;
  int osd = -1;    // victim OSD; -1 where the action picks its own target
  int arg = 0;     // wipe flag / failure-point index / drop modulus
  int mode = 0;    // kArmEnginePoint: 0 = abort the flush, 1 = crash the OSD
  SimTime dur = 0; // kNetDelay: extra one-way latency

  std::string describe() const;
};

struct FaultPlan {
  uint64_t seed = 0;
  std::vector<FaultEvent> events;  // sorted by (at, emission order)

  // Byte-stable rendering: same seed => identical string.
  std::string describe() const;
};

}  // namespace gdedup
