#include "dedup/scrub.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/encoding.h"
#include "common/logging.h"
#include "dedup/chunk_map.h"
#include "ec/reed_solomon.h"
#include "hash/fingerprint.h"

namespace gdedup {

std::vector<std::pair<ObjectKey, std::vector<OsdId>>> Scrubber::chunk_holders()
    const {
  std::map<ObjectKey, std::vector<OsdId>> holders;
  for (OsdId id : ctx_->osdmap().all_osds()) {
    Osd* o = ctx_->osd(id);
    if (o == nullptr || !o->is_up()) continue;
    const ObjectStore* st = o->store_if_exists(chunks_);
    if (st == nullptr) continue;
    for (const auto& key : st->list(chunks_)) {
      holders[key].push_back(id);
    }
  }
  return {holders.begin(), holders.end()};
}

ScrubReport Scrubber::deep_scrub(bool repair) {
  ScrubReport rep;
  const SimTime start = ctx_->sched().now();
  const PoolConfig& pcfg = ctx_->osdmap().pool(chunks_);
  SimTime latest = start;

  for (const auto& [key, who] : chunk_holders()) {
    auto expect = Fingerprint::from_hex(key.oid);
    if (!expect.is_ok()) {
      // Not a content-addressed object (foreign data in the pool); skip.
      continue;
    }
    rep.chunks_checked++;

    if (pcfg.scheme == RedundancyScheme::kReplicated) {
      // Read every replica, verify content against the OID, and compare
      // the copies; a copy whose fingerprint matches the OID is by
      // definition the good one (self-verifying objects).
      Buffer good;
      bool have_good = false;
      std::vector<OsdId> bad;
      for (OsdId id : who) {
        Osd* o = ctx_->osd(id);
        auto data = o->store(chunks_).read(key, 0, 0);
        if (!data.is_ok()) continue;
        latest = std::max(latest, o->disk().read(data->size()));
        CpuModel& cpu = ctx_->node_cpu(o->node());
        cpu.execute(cpu.fingerprint_cost(data->size()));
        rep.bytes_verified += data->size();
        const Fingerprint fp =
            Fingerprint::compute(expect->algo(), data->span());
        if (fp == *expect) {
          if (!have_good) {
            good = *data;
            have_good = true;
          }
        } else {
          bad.push_back(id);
        }
      }
      if (!bad.empty()) {
        if (have_good) {
          rep.replica_mismatches += bad.size();
        } else {
          rep.fingerprint_mismatches++;
        }
        if (repair && have_good) {
          for (OsdId id : bad) {
            Osd* o = ctx_->osd(id);
            Transaction txn;
            txn.write_full(key, good);
            latest = std::max(latest, o->disk().write(good.size()));
            if (o->store(chunks_).apply(txn).is_ok()) {
              rep.replicas_repaired++;
            }
          }
        }
      }
    } else {
      // EC: decode from shards and verify the reassembled content; a
      // failed decode or fingerprint mismatch is reported (repair of EC
      // shards goes through recovery, not scrub).
      ReedSolomon rs(pcfg.ec_k, pcfg.ec_m);
      std::vector<std::optional<Buffer>> shards(
          static_cast<size_t>(pcfg.ec_k + pcfg.ec_m));
      uint64_t orig_len = 0;
      for (OsdId id : who) {
        Osd* o = ctx_->osd(id);
        const ObjectStore* st = o->store_if_exists(chunks_);
        auto data = st->read(key, 0, 0);
        auto shard_attr = st->getxattr(key, "ec.shard");
        if (!data.is_ok() || !shard_attr.is_ok()) continue;
        Decoder d(shard_attr.value());
        uint32_t idx = 0;
        if (!d.get_u32(&idx).is_ok() ||
            idx >= static_cast<uint32_t>(pcfg.ec_k + pcfg.ec_m)) {
          continue;
        }
        latest = std::max(latest, o->disk().read(data->size()));
        rep.bytes_verified += data->size();
        shards[idx] = std::move(data).value();
        auto len_attr = st->getxattr(key, "ec.orig_len");
        if (len_attr.is_ok()) {
          Decoder ld(len_attr.value());
          uint64_t v = 0;
          if (ld.get_u64(&v).is_ok()) orig_len = v;
        }
      }
      auto decoded = rs.decode(shards, orig_len);
      if (!decoded.is_ok()) {
        rep.fingerprint_mismatches++;
        continue;
      }
      const Fingerprint fp =
          Fingerprint::compute(expect->algo(), decoded->span());
      if (!(fp == *expect)) rep.fingerprint_mismatches++;
    }
  }

  ctx_->sched().run_until(latest);
  rep.duration = ctx_->sched().now() - start;
  return rep;
}

ScrubReport Scrubber::collect_garbage() {
  ScrubReport rep;
  const SimTime start = ctx_->sched().now();

  // Live references according to the metadata pool's chunk maps (primary
  // copies are authoritative).
  // key: chunk oid -> set of "source_oid@offset".
  std::map<std::string, std::set<std::pair<std::string, uint64_t>>> live;
  for (OsdId id : ctx_->osdmap().all_osds()) {
    Osd* o = ctx_->osd(id);
    if (o == nullptr || !o->is_up()) continue;
    const ObjectStore* st = o->store_if_exists(meta_);
    if (st == nullptr) continue;
    for (const auto& key : st->list(meta_)) {
      if (ctx_->osdmap().primary(meta_, key.oid) != id) continue;
      auto cm = load_chunk_map(*st, key);
      if (!cm.is_ok()) continue;
      for (const auto& [off, e] : cm->entries()) {
        if (e.flushed()) live[e.chunk_id].insert({key.oid, off});
      }
    }
  }

  int outstanding = 0;
  for (const auto& [key, who] : chunk_holders()) {
    const OsdId primary = ctx_->osdmap().primary(chunks_, key.oid);
    if (std::find(who.begin(), who.end(), primary) == who.end()) continue;
    Osd* o = ctx_->osd(primary);
    auto raw = o->local_getxattr(chunks_, key.oid, kRefsXattr);
    std::vector<ChunkRef> refs;
    if (raw.is_ok()) {
      auto dec = decode_refs(raw.value());
      if (dec.is_ok()) refs = std::move(dec).value();
    }

    auto live_it = live.find(key.oid);
    std::vector<ChunkRef> kept;
    for (const auto& r : refs) {
      rep.refs_checked++;
      const bool alive =
          r.pool == meta_ && live_it != live.end() &&
          live_it->second.count({r.oid, r.offset}) > 0;
      if (alive) {
        kept.push_back(r);
      } else {
        rep.dangling_refs_dropped++;
      }
    }
    if (kept.size() == refs.size() && !refs.empty()) continue;  // clean

    outstanding++;
    if (kept.empty()) {
      rep.leaked_chunks_reclaimed++;
      o->submit_remove(chunks_, key.oid,
                       [&outstanding](Status) { outstanding--; },
                       /*foreground=*/false);
    } else {
      Transaction txn;
      txn.setxattr(key, kRefsXattr, encode_refs(kept));
      o->submit_write(chunks_, key.oid, std::move(txn),
                      [&outstanding](Status) { outstanding--; },
                      /*foreground=*/false);
    }
  }
  while (outstanding > 0) {
    if (!ctx_->sched().step()) break;
  }
  rep.duration = ctx_->sched().now() - start;
  return rep;
}

}  // namespace gdedup
