#include "dedup/scrub.h"

#include <algorithm>
#include <map>
#include <memory>
#include <set>

#include "common/encoding.h"
#include "common/logging.h"
#include "dedup/chunk_map.h"
#include "dedup/invariants.h"
#include "ec/reed_solomon.h"
#include "hash/fingerprint.h"

namespace gdedup {

Scrubber::Scrubber(ClusterContext* ctx, PoolId metadata_pool,
                   PoolId chunk_pool)
    : ctx_(ctx), meta_(metadata_pool), chunks_(chunk_pool) {
  obs::PerfRegistry* reg = ctx_->perf_registry();
  if (reg == nullptr) return;
  const std::string name = "scrub.pool" + std::to_string(meta_);
  perf_ = reg->get(name);
  if (perf_ != nullptr) return;  // transient Scrubbers share one entity
  obs::PerfCountersBuilder b(name, l_scrub_first, l_scrub_last);
  b.add_counter(l_scrub_deep_scrubs, "deep_scrubs");
  b.add_counter(l_scrub_gc_passes, "gc_passes");
  b.add_counter(l_scrub_chunks_checked, "chunks_checked");
  b.add_counter(l_scrub_bytes_verified, "bytes_verified");
  b.add_counter(l_scrub_fp_mismatches, "fp_mismatches");
  b.add_counter(l_scrub_replica_mismatches, "replica_mismatches");
  b.add_counter(l_scrub_replicas_repaired, "replicas_repaired");
  b.add_counter(l_scrub_refs_checked, "refs_checked");
  b.add_counter(l_scrub_dangling_refs_dropped, "dangling_refs_dropped");
  b.add_counter(l_scrub_leaked_chunks_reclaimed, "leaked_chunks_reclaimed");
  b.add_counter(l_scrub_refs_repaired, "refs_repaired");
  b.add_counter(l_scrub_busy_ref_skips, "busy_ref_skips");
  b.add_histogram(l_scrub_pass_lat, "pass_lat");
  perf_ = b.create();
  reg->add(perf_);
}

void Scrubber::record_pass(const ScrubReport& rep, bool gc) {
  if (perf_ == nullptr) return;
  perf_->inc(gc ? l_scrub_gc_passes : l_scrub_deep_scrubs);
  perf_->inc(l_scrub_chunks_checked, rep.chunks_checked);
  perf_->inc(l_scrub_bytes_verified, rep.bytes_verified);
  perf_->inc(l_scrub_fp_mismatches, rep.fingerprint_mismatches);
  perf_->inc(l_scrub_replica_mismatches, rep.replica_mismatches);
  perf_->inc(l_scrub_replicas_repaired, rep.replicas_repaired);
  perf_->inc(l_scrub_refs_checked, rep.refs_checked);
  perf_->inc(l_scrub_dangling_refs_dropped, rep.dangling_refs_dropped);
  perf_->inc(l_scrub_leaked_chunks_reclaimed, rep.leaked_chunks_reclaimed);
  perf_->inc(l_scrub_refs_repaired, rep.refs_repaired);
  perf_->inc(l_scrub_busy_ref_skips, rep.busy_ref_skips);
  perf_->record(l_scrub_pass_lat, static_cast<uint64_t>(rep.duration));
}

std::vector<std::pair<ObjectKey, std::vector<OsdId>>> Scrubber::chunk_holders()
    const {
  auto m = dedup_walk::holders(ctx_, chunks_);
  return {m.begin(), m.end()};
}

ScrubReport Scrubber::deep_scrub(bool repair) {
  ScrubReport rep;
  const SimTime start = ctx_->sched().now();
  const PoolConfig& pcfg = ctx_->osdmap().pool(chunks_);
  SimTime latest = start;

  for (const auto& [key, who] : chunk_holders()) {
    auto expect = Fingerprint::from_hex(key.oid);
    if (!expect.is_ok()) {
      // Not a content-addressed object (foreign data in the pool); skip.
      continue;
    }
    rep.chunks_checked++;

    if (pcfg.scheme == RedundancyScheme::kReplicated) {
      // Read every replica, verify content against the OID, and compare
      // the copies; a copy whose fingerprint matches the OID is by
      // definition the good one (self-verifying objects).
      Buffer good;
      bool have_good = false;
      std::vector<OsdId> bad;
      for (OsdId id : who) {
        // An OSD listed as a holder can drop mid-campaign; skip it rather
        // than scrub a store that is no longer serving.
        Osd* o = ctx_->osd(id);
        if (o == nullptr || !o->is_up()) continue;
        const ObjectStore* st = o->store_if_exists(chunks_);
        if (st == nullptr) continue;
        auto data = st->read(key, 0, 0);
        if (!data.is_ok()) continue;
        latest = std::max(latest, o->disk().read(data->size()));
        CpuModel& cpu = ctx_->node_cpu(o->node());
        cpu.execute(cpu.fingerprint_cost(data->size()));
        rep.bytes_verified += data->size();
        const Fingerprint fp =
            Fingerprint::compute(expect->algo(), data->span());
        if (fp == *expect) {
          if (!have_good) {
            good = *data;
            have_good = true;
          }
        } else {
          bad.push_back(id);
        }
      }
      if (!bad.empty()) {
        if (have_good) {
          rep.replica_mismatches += bad.size();
        } else {
          rep.fingerprint_mismatches++;
        }
        if (repair && have_good) {
          for (OsdId id : bad) {
            Osd* o = ctx_->osd(id);
            if (o == nullptr || !o->is_up()) continue;
            Transaction txn;
            txn.write_full(key, good);
            latest = std::max(latest, o->disk().write(good.size()));
            if (o->store(chunks_).apply(txn).is_ok()) {
              rep.replicas_repaired++;
            }
          }
        }
      }
    } else {
      // EC: decode from shards and verify the reassembled content; a
      // failed decode or fingerprint mismatch is reported (repair of EC
      // shards goes through recovery, not scrub).
      ReedSolomon rs(pcfg.ec_k, pcfg.ec_m);
      std::vector<std::optional<Buffer>> shards(
          static_cast<size_t>(pcfg.ec_k + pcfg.ec_m));
      uint64_t orig_len = 0;
      for (OsdId id : who) {
        Osd* o = ctx_->osd(id);
        if (o == nullptr || !o->is_up()) continue;
        const ObjectStore* st = o->store_if_exists(chunks_);
        if (st == nullptr) continue;  // holder dropped and lost its store
        auto data = st->read(key, 0, 0);
        auto shard_attr = st->getxattr(key, "ec.shard");
        if (!data.is_ok() || !shard_attr.is_ok()) continue;
        Decoder d(shard_attr.value());
        uint32_t idx = 0;
        if (!d.get_u32(&idx).is_ok() ||
            idx >= static_cast<uint32_t>(pcfg.ec_k + pcfg.ec_m)) {
          continue;
        }
        latest = std::max(latest, o->disk().read(data->size()));
        rep.bytes_verified += data->size();
        shards[idx] = std::move(data).value();
        auto len_attr = st->getxattr(key, "ec.orig_len");
        if (len_attr.is_ok()) {
          Decoder ld(len_attr.value());
          uint64_t v = 0;
          if (ld.get_u64(&v).is_ok()) orig_len = v;
        }
      }
      auto decoded = rs.decode(shards, orig_len);
      if (!decoded.is_ok()) {
        rep.fingerprint_mismatches++;
        continue;
      }
      const Fingerprint fp =
          Fingerprint::compute(expect->algo(), decoded->span());
      if (!(fp == *expect)) rep.fingerprint_mismatches++;
    }
  }

  ctx_->sched().run_until(latest);
  rep.duration = ctx_->sched().now() - start;
  record_pass(rep, /*gc=*/false);
  return rep;
}

ScrubReport Scrubber::collect_garbage() {
  ScrubReport rep;
  const SimTime start = ctx_->sched().now();

  // Live references according to the metadata pool's chunk maps.  GC
  // takes the conservative any-holder union: while an object's home
  // primary is down, the rotated-in primary may not hold a copy yet, and
  // judging liveness by the primary alone would make every ref of that
  // object look dangling and reclaim chunks that are still referenced.
  bool unresolved = false;
  const auto live =
      dedup_walk::live_refs(ctx_, meta_, /*any_holder=*/true, &unresolved);
  if (unresolved) {
    // Some chunk map's recipe chunks could not be fetched (every holder
    // down), so `live` is a partial enumeration.  Reclaiming against it
    // could collect chunks whose only references live inside the missing
    // recipes — audit next pass once the holders return.
    rep.duration = ctx_->sched().now() - start;
    record_pass(rep, /*gc=*/true);
    return rep;
  }
  // A flush's chunk-put -> map-update window means the maps lag the chunk
  // pool; only a fully idle tier fleet lets us trust "no refs at all".
  const bool engines_idle = dedup_walk::total_backlog(ctx_, meta_) == 0;

  auto outstanding = std::make_shared<int>(0);
  for (const auto& [key, who] : chunk_holders()) {
    const OsdId primary = ctx_->osdmap().primary(chunks_, key.oid);
    Osd* o = primary >= 0 ? ctx_->osd(primary) : nullptr;
    if (o == nullptr || !o->is_up()) continue;  // audit next pass
    if (std::find(who.begin(), who.end(), primary) == who.end()) {
      // Placement orphan: the primary is up but holds no copy.  Usually
      // recovery backfill fixes this, but a partially applied put or
      // remove (shard sub-writes lost to a network fault or a mid-fanout
      // crash) can leave residue recovery cannot rebuild — e.g. fewer
      // than k surviving shards.  If no holder's refs are live or busy,
      // the residue is garbage: reclaim it from every holder.  Any live
      // or busy ref means real data may still converge; audit next pass.
      if (!engines_idle) continue;
      bool any_keep = false;
      const auto live_it = live.find(key.oid);
      for (OsdId id : who) {
        auto raw = ctx_->osd(id)->local_getxattr(chunks_, key.oid,
                                                 kRefsXattr);
        if (!raw.is_ok()) continue;
        auto dec = decode_refs(raw.value());
        if (!dec.is_ok()) continue;
        for (const auto& r : dec.value()) {
          const bool alive = r.pool == meta_ && live_it != live.end() &&
                             live_it->second.count(r) > 0;
          if (alive ||
              (r.pool == meta_ &&
               dedup_walk::object_busy(ctx_, meta_, r.oid))) {
            any_keep = true;
          }
        }
      }
      if (any_keep) continue;
      rep.leaked_chunks_reclaimed++;
      for (OsdId id : who) {
        (void)ctx_->osd(id)->store(chunks_).remove_object(key);
        // Direct store removal bypasses chunk_deref_locked's cache erase;
        // a recreate of this OID must not revalidate a stale refs entry.
        ctx_->osd(id)->drop_refs_cache(key);
      }
      continue;
    }
    auto raw = o->local_getxattr(chunks_, key.oid, kRefsXattr);
    std::vector<ChunkRef> refs;
    if (raw.is_ok()) {
      auto dec = decode_refs(raw.value());
      if (dec.is_ok()) refs = std::move(dec).value();
    }

    const auto live_it = live.find(key.oid);
    std::vector<ChunkRef> kept;
    for (const auto& r : refs) {
      rep.refs_checked++;
      const bool alive = r.pool == meta_ && live_it != live.end() &&
                         live_it->second.count(r) > 0;
      if (alive) {
        kept.push_back(r);
        continue;
      }
      if (r.pool == meta_ && dedup_walk::object_busy(ctx_, meta_, r.oid)) {
        // The source object has volatile flush state: this may be the ref
        // a chunk put recorded whose map update is still in flight (the
        // open window of Figure 9 step 4).  Dropping it now would lose the
        // data the map is about to reference.
        rep.busy_ref_skips++;
        kept.push_back(r);
        continue;
      }
      rep.dangling_refs_dropped++;
    }

    // Repair direction: a map entry that references this chunk but is not
    // recorded on it (possible when a chunk was re-created under a
    // temporary acting set during downtime).  Without the ref, a later
    // deref by another holder would reclaim the chunk out from under this
    // entry — a real data-loss path the campaign exercises.
    if (live_it != live.end()) {
      for (const auto& r : live_it->second) {
        if (std::find(kept.begin(), kept.end(), r) == kept.end() &&
            !dedup_walk::object_busy(ctx_, meta_, r.oid)) {
          kept.push_back(r);
          rep.refs_repaired++;
        }
      }
    }

    if (!refs.empty() && kept == refs) continue;  // clean

    if (kept.empty()) {
      if (!engines_idle && refs.empty()) {
        // Refs xattr empty or unreadable while engines are mid-flight:
        // grace it this pass instead of reclaiming a chunk whose create
        // may just not have recorded its first ref yet.
        rep.busy_ref_skips++;
        continue;
      }
      rep.leaked_chunks_reclaimed++;
      // GC reclaim is not a deref: invalidate every holder's decoded-refs
      // entry before the removal fans out.
      for (OsdId id : who) ctx_->osd(id)->drop_refs_cache(key);
      (*outstanding)++;
      o->submit_remove(chunks_, key.oid,
                       [outstanding](Status) { (*outstanding)--; },
                       /*foreground=*/false);
    } else {
      (*outstanding)++;
      Transaction txn;
      txn.setxattr(key, kRefsXattr, encode_refs(kept));
      o->submit_write(chunks_, key.oid, std::move(txn),
                      [outstanding](Status) { (*outstanding)--; },
                      /*foreground=*/false);
    }
  }
  // Bounded wait: the shared counter keeps late completions safe even if
  // we give up, and the deadline keeps GC from spinning forever when an
  // OSD dies mid-pass and its ack never comes.
  const SimTime deadline = ctx_->sched().now() + sec(60);
  while (*outstanding > 0 && ctx_->sched().now() < deadline) {
    if (!ctx_->sched().step()) break;
  }
  rep.duration = ctx_->sched().now() - start;
  record_pass(rep, /*gc=*/true);
  return rep;
}

}  // namespace gdedup
