#include "dedup/hitset.h"

#include "hash/fingerprint.h"

namespace gdedup {

HitSet::HitSet(SimTime period, int retained_periods, int hit_threshold)
    : period_(period), retained_(retained_periods), threshold_(hit_threshold) {}

uint64_t HitSet::key_of(const std::string& oid) { return fnv1a(oid); }

void HitSet::rotate(SimTime now) {
  // Long-idle fast-forward *before* any sealing work: when the gap spans
  // the whole retention horizon, every retained period has aged out and the
  // stale current-period counts are older than anything history may hold —
  // sealing them would smuggle expired hotness into the new window.  O(1)
  // regardless of how much virtual time passed.
  if (now - window_start_ > period_ * static_cast<SimTime>(retained_ + 1)) {
    history_.clear();
    current_.clear();
    window_start_ = now - (now % period_);
    return;
  }
  while (now >= window_start_ + period_) {
    // Seal the current period into a bloom filter.
    BloomFilter bf(current_.size() + 16, 0.01);
    for (const auto& [oid, cnt] : current_) bf.insert(key_of(oid));
    history_.push_front(std::move(bf));
    while (static_cast<int>(history_.size()) > retained_) history_.pop_back();
    current_.clear();
    window_start_ += period_;
    periods_sealed_++;
  }
}

void HitSet::access(const std::string& oid, SimTime now) {
  rotate(now);
  current_[oid]++;
}

bool HitSet::is_hot(const std::string& oid, SimTime now) {
  rotate(now);
  uint32_t score = 0;
  auto it = current_.find(oid);
  if (it != current_.end()) score += it->second;
  if (score >= static_cast<uint32_t>(threshold_)) return true;
  const uint64_t key = key_of(oid);
  for (const auto& bf : history_) {
    if (bf.maybe_contains(key)) {
      score++;
      if (score >= static_cast<uint32_t>(threshold_)) return true;
    }
  }
  return false;
}

}  // namespace gdedup
