#include "dedup/ratio_analyzer.h"

namespace gdedup {

namespace {

RatioAnalyzer::ChunkScan scan_object(const FixedChunker& chunker,
                                     FingerprintAlgo algo,
                                     const Buffer& data) {
  RatioAnalyzer::ChunkScan out;
  for (const Chunk& c : chunker.split(data)) {
    out.emplace_back(Fingerprint::compute(algo, c.data.span()),
                     c.data.size());
  }
  return out;
}

}  // namespace

RatioAnalyzer::RatioAnalyzer(const OsdMap* map, PoolId pool,
                             uint32_t chunk_size, FingerprintAlgo algo,
                             ExecPool* exec_pool)
    : map_(map),
      pool_(pool),
      chunker_(chunk_size),
      algo_(algo),
      exec_pool_(exec_pool) {}

void RatioAnalyzer::add_object(const std::string& oid, const Buffer& data) {
  const OsdId primary = map_->primary(pool_, oid);
  if (exec_pool_ != nullptr && exec_pool_->parallel()) {
    // Pure job over the immutable COW payload: split + per-chunk hash.
    // Accounting stays on the caller, applied in submission order.
    Pending p;
    p.primary = primary;
    p.fut = kernel_async<ChunkScan>(
        exec_pool_, Kernel::kCdcChunk,
        [chunker = chunker_, algo = algo_, data] {
          return scan_object(chunker, algo, data);
        });
    pending_.push_back(std::move(p));
    return;
  }
  account(primary, scan_object(chunker_, algo_, data));
}

void RatioAnalyzer::drain() {
  while (!pending_.empty()) {
    Pending p = std::move(pending_.front());
    pending_.pop_front();
    account(p.primary, p.fut.take());
  }
}

void RatioAnalyzer::account(OsdId primary, const ChunkScan& scan) {
  auto& local_report = per_osd_[primary];
  auto& local_set = local_seen_[primary];
  for (const auto& [fp, n] : scan) {
    global_.logical_bytes += n;
    if (global_seen_.insert(fp).second) global_.unique_bytes += n;

    local_report.logical_bytes += n;
    if (local_set.insert(fp).second) local_report.unique_bytes += n;
  }
}

DedupRatioReport RatioAnalyzer::local() {
  drain();
  DedupRatioReport r;
  for (const auto& [osd, rep] : per_osd_) {
    r.logical_bytes += rep.logical_bytes;
    r.unique_bytes += rep.unique_bytes;
  }
  return r;
}

}  // namespace gdedup
