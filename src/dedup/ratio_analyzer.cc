#include "dedup/ratio_analyzer.h"

namespace gdedup {

RatioAnalyzer::RatioAnalyzer(const OsdMap* map, PoolId pool,
                             uint32_t chunk_size, FingerprintAlgo algo)
    : map_(map), pool_(pool), chunker_(chunk_size), algo_(algo) {}

void RatioAnalyzer::add_object(const std::string& oid, const Buffer& data) {
  const OsdId primary = map_->primary(pool_, oid);
  auto& local_report = per_osd_[primary];
  auto& local_set = local_seen_[primary];

  for (const Chunk& c : chunker_.split(data)) {
    const Fingerprint fp = Fingerprint::compute(algo_, c.data.span());
    const uint64_t n = c.data.size();

    global_.logical_bytes += n;
    if (global_seen_.insert(fp).second) global_.unique_bytes += n;

    local_report.logical_bytes += n;
    if (local_set.insert(fp).second) local_report.unique_bytes += n;
  }
}

DedupRatioReport RatioAnalyzer::local() const {
  DedupRatioReport r;
  for (const auto& [osd, rep] : per_osd_) {
    r.logical_bytes += rep.logical_bytes;
    r.unique_bytes += rep.unique_bytes;
  }
  return r;
}

}  // namespace gdedup
