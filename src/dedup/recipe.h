#pragma once

// Recipe-chunk metadata dedup (Metadedup, MSST'19, applied to the paper's
// self-contained chunk maps).
//
// A recipe chunk is a content-addressed chunk-pool object whose payload is
// the varint-packed ChunkMapEntry records of one fixed offset-aligned
// window of an object's chunk map.  Identical windows — e.g. the same
// object uploaded by many tenants, or unchanged regions across versions —
// hash to the same recipe chunk and deduplicate exactly like data chunks,
// including refcounting, scrub and GC.  The object's own omap then holds
// only short "dedup.rcp." records naming its recipe chunks plus a tail of
// hot inline "dedup.ck." entries that overlay (win over) the recipe
// content until the background flush compacts them back in.
//
// Everything here is host-side metadata plumbing: fetching a recipe chunk
// for map materialization is a store peek (like the tier's degraded-peer
// map pull), not a simulated RPC.  The simulated cost of the recipe layer
// is carried by the real chunk-put/deref traffic the tier issues for
// recipe chunks.

#include <cstdint>
#include <string>
#include <vector>

#include "common/buffer.h"
#include "common/status.h"
#include "dedup/chunk_map.h"

namespace gdedup {

class ClusterContext;
class ObjectStore;

// --- recipe chunk payload codec -------------------------------------------

// Payload layout: magic u32, version u8, count varint, then `count`
// varint-length-prefixed packed entries in ascending offset order.  The
// deterministic byte layout is what makes equal windows content-equal.
inline constexpr uint32_t kRecipeChunkMagic = 0x47524350;  // "GRCP"

Buffer encode_recipe_chunk(const std::vector<ChunkMapEntry>& entries);
Result<std::vector<ChunkMapEntry>> decode_recipe_chunk(const Buffer& b);

// --- host-side chunk fetch ------------------------------------------------

// Read a chunk object's content directly from the stores of its holders:
// acting order first, then any up OSD (degraded placements), with EC
// pools shard-gathered and Reed-Solomon decoded (the deep-scrub path).
// Returns not_found when no up holder can produce the bytes.
Result<Buffer> peek_chunk_content(ClusterContext* ctx, int pool,
                                  const std::string& oid);

// Whether the chunk object exists on its current primary — the
// deterministic existence probe the tier uses to classify a recipe-chunk
// put as a dedup hit before issuing it.
bool peek_chunk_exists(ClusterContext* ctx, int pool,
                       const std::string& oid);

// --- recipe-aware map loading ---------------------------------------------

// Load an object's chunk map resolving recipe indirection: inline
// "dedup.ck." entries first (inline_rec = true), then each "dedup.rcp."
// record's chunk fetched and its entries materialized wherever no inline
// entry shadows them (inline_rec = false).  A recipe chunk that cannot be
// fetched sets the map's unresolved() flag and contributes nothing; ref
// enumerators must then act conservatively.  `bytes_read` (optional)
// accumulates omap + recipe payload bytes for the meta-read accounting.
Result<ChunkMap> load_chunk_map_resolved(ClusterContext* ctx,
                                         const ObjectStore& store,
                                         const ObjectKey& key,
                                         uint64_t* bytes_read = nullptr);

}  // namespace gdedup
