#pragma once

// Cluster-wide dedup invariant checking (the referee of the fault-injection
// campaign), plus the shared cluster-walk helpers the scrubber and the
// checker both build on (the walk logic used to live only inside
// Scrubber::collect_garbage).
//
// After a schedule's faults have healed and the engines have quiesced, the
// checker cross-walks the metadata pool's chunk maps against the chunk
// pool's refcount xattrs and asserts the paper's Section 4.6 consistency
// argument end to end:
//
//   1. quiescence      — no chunk-map entry is still dirty;
//   2. conservation    — every flushed entry's chunk exists on its primary
//                        and records exactly that (pool, oid, offset) ref,
//                        and every recorded ref has a matching flushed
//                        entry (no leaks in either direction);
//   3. reachability    — no chunk object exists with zero recorded refs;
//   4. readback        — every object reads back byte-identical to an
//                        in-memory oracle of acked client writes, and
//                        removed objects stay gone.
//
// All walks iterate ordered containers and the report is a sorted vector
// of strings, so the same cluster state always renders byte-identically.

#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/buffer.h"
#include "common/status.h"
#include "osd/cluster_context.h"
#include "osd/messages.h"

namespace gdedup {

namespace dedup_walk {

// Every object key in `pool` with the up OSDs holding a copy/shard.
std::map<ObjectKey, std::vector<OsdId>> holders(ClusterContext* ctx,
                                                PoolId pool);

// chunk oid -> refs held by flushed chunk-map entries.  With
// `any_holder` false only the primary's copy of each map is consulted —
// the strict view the post-heal checker wants.  With it true the flushed
// entries of every up holder's copy are unioned: the conservative view GC
// must use while the cluster is degraded, because a freshly rotated-in
// primary that recovery has not reached yet would otherwise report an
// object's refs as dangling and let GC reclaim chunks that are still
// referenced (an extra stale ref merely keeps a chunk alive one pass
// longer; a missing live ref loses data).
//
// Recipe-aware: maps are loaded through the resolving loader, so recipe
// members contribute their data-chunk refs and every recipe record
// contributes a {meta_pool, oid, kRecipeRefBit | base} ref on its recipe
// chunk.  If some recipe chunk could not be fetched (all holders down)
// the corresponding map is incomplete; `any_unresolved`, when non-null,
// is set true so GC can refuse to reclaim against a partial live set.
std::map<std::string, std::set<ChunkRef>> live_refs(
    ClusterContext* ctx, PoolId meta_pool, bool any_holder,
    bool* any_unresolved = nullptr);

// True while any up OSD's tier holds volatile state for `oid` (dirty
// entry, in-flight flush, or an unapplied client write).
bool object_busy(ClusterContext* ctx, PoolId meta_pool,
                 const std::string& oid);

// Sum of every up OSD's tier backlog for `meta_pool`.
size_t total_backlog(ClusterContext* ctx, PoolId meta_pool);

}  // namespace dedup_walk

struct InvariantReport {
  uint64_t objects_checked = 0;
  uint64_t entries_checked = 0;
  uint64_t chunks_checked = 0;
  uint64_t refs_checked = 0;
  uint64_t bytes_compared = 0;
  uint64_t stray_copies = 0;  // informational: residue on non-acting OSDs
  std::vector<std::string> violations;  // sorted, deterministic

  bool clean() const { return violations.empty(); }
  std::string to_string() const;
};

class InvariantChecker {
 public:
  // Performs an end-to-end client read of a metadata-pool object.
  using ReadFn = std::function<Result<Buffer>(const std::string& oid)>;

  InvariantChecker(ClusterContext* ctx, PoolId meta_pool, PoolId chunk_pool)
      : ctx_(ctx), meta_(meta_pool), chunks_(chunk_pool) {}

  // Full check: metadata conservation plus oracle readback.  `oracle` maps
  // oid -> expected bytes for every object whose last write was acked;
  // `removed` lists oids whose removal was acked (they must not read back).
  InvariantReport check(const std::map<std::string, Buffer>& oracle,
                        const std::set<std::string>& removed,
                        const ReadFn& read_fn) const;

  // Metadata-only conservation check (no oracle needed).
  InvariantReport check_metadata() const;

 private:
  void check_conservation(InvariantReport* rep) const;

  ClusterContext* ctx_;
  PoolId meta_;
  PoolId chunks_;
};

}  // namespace gdedup
