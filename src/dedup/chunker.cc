#include "dedup/chunker.h"

#include <bit>
#include <cassert>

#include "hash/rabin.h"
#include "hash/weak_hash.h"

namespace gdedup {

FixedChunker::FixedChunker(uint32_t chunk_size) : chunk_size_(chunk_size) {
  assert(chunk_size > 0);
}

std::vector<Chunk> FixedChunker::split(const Buffer& object_data) const {
  std::vector<Chunk> out;
  const size_t n = object_data.size();
  out.reserve(n / chunk_size_ + 1);
  for (size_t off = 0; off < n; off += chunk_size_) {
    const size_t len = std::min<size_t>(chunk_size_, n - off);
    out.push_back({off, object_data.slice(off, len)});
  }
  return out;
}

std::vector<WeakChunk> FixedChunker::split_with_weak(
    const Buffer& object_data) const {
  std::vector<WeakChunk> out;
  const size_t n = object_data.size();
  out.reserve(n / chunk_size_ + 1);
  for (size_t off = 0; off < n; off += chunk_size_) {
    const size_t len = std::min<size_t>(chunk_size_, n - off);
    Buffer data = object_data.slice(off, len);
    const uint64_t w = WeakHasher::oneshot(data.span());
    out.push_back({off, std::move(data), w});
  }
  return out;
}

std::vector<uint64_t> FixedChunker::covering(uint64_t off, uint64_t len) const {
  std::vector<uint64_t> out;
  if (len == 0) return out;
  const uint64_t first = chunk_start(off);
  const uint64_t last = chunk_start(off + len - 1);
  for (uint64_t c = first; c <= last; c += chunk_size_) out.push_back(c);
  return out;
}

CdcChunker::CdcChunker(uint32_t min_size, uint32_t avg_size, uint32_t max_size)
    : min_size_(min_size), avg_size_(avg_size), max_size_(max_size) {
  assert(min_size >= RabinRolling::kWindow);
  assert(min_size <= avg_size && avg_size <= max_size);
  assert(std::has_single_bit(avg_size));
  mask_ = avg_size - 1;  // boundary probability 1/avg per byte
}

namespace {

// Skip-ahead CDC boundary scan shared by split() and split_with_weak().
// A boundary requires len >= min_size and a full window; the rolling hash
// at any position depends only on the last kWindow bytes (the out_table
// subtraction cancels everything older, exactly, in mod-2^64 arithmetic).
// Since min_size >= kWindow (ctor assert), it is safe to start rolling
// kWindow bytes before the first candidate position of each chunk — the
// skipped prefix provably cannot cut.  The inner loop keeps the hash and
// ring index in locals, evicts via a preloaded table pointer, and wraps
// with a compare instead of `%`.  emit(start, len) fires per chunk, in
// order, immediately after the cut is found.
template <typename Emit>
void cdc_scan(const uint8_t* p, size_t n, uint32_t min_size_,
              uint32_t max_size_, uint64_t mask_, Emit emit) {
  constexpr size_t kW = RabinRolling::kWindow;
  constexpr uint64_t kMul = RabinRolling::kMul;
  const uint64_t* out_tab = RabinRolling::out_table().data();

  size_t start = 0;
  while (n - start >= min_size_) {
    const size_t limit = std::min(n, start + max_size_);

    // Warm up: roll the kW bytes ending at the first candidate position
    // (len == min_size_).  No eviction happens until the window is full,
    // and no ring buffer is needed at all — the last kW bytes are always
    // available in the input itself, so eviction reads p[i - kW] directly.
    const uint8_t* q = p + start + min_size_ - kW;
    uint64_t h = 0;
    for (size_t j = 0; j < kW; j++) {
      h = h * kMul + q[j];
    }

    size_t i = start + min_size_ - 1;
    size_t cut_end = 0;  // 0 = no boundary found (real cuts are >= min_size_)
    if ((h & mask_) == mask_) {
      cut_end = i + 1;
    } else if (i + 1 < limit) {
      // Steady-state scan as two interleaved stride-2 chains.  Expanding
      // the recurrence once gives h[i+2] = h[i]*kMul^2 + d[i+1]*kMul +
      // d[i+2] with d[j] = p[j] - out_tab[p[j-kW]] (all mod 2^64, exact),
      // so each chain still yields the true hash at its positions while
      // the serial multiply latency is paid once per two bytes.
      constexpr uint64_t kMul2 = kMul * kMul;
      uint64_t a = h;  // hash at position i
      uint64_t dprev = static_cast<uint64_t>(p[i + 1]) - out_tab[p[i + 1 - kW]];
      uint64_t b = a * kMul + dprev;  // hash at position i + 1
      if ((b & mask_) == mask_) {
        cut_end = i + 2;
      } else {
        while (i + 3 < limit) {
          const uint64_t d2 =
              static_cast<uint64_t>(p[i + 2]) - out_tab[p[i + 2 - kW]];
          const uint64_t d3 =
              static_cast<uint64_t>(p[i + 3]) - out_tab[p[i + 3 - kW]];
          a = a * kMul2 + dprev * kMul + d2;  // hash at i + 2
          b = b * kMul2 + d2 * kMul + d3;    // hash at i + 3
          dprev = d3;
          if ((a & mask_) == mask_) {
            cut_end = i + 3;  // earliest boundary wins: check a before b
            break;
          }
          if ((b & mask_) == mask_) {
            cut_end = i + 4;
            break;
          }
          i += 2;
        }
        if (cut_end == 0) {
          // At most one unchecked candidate remains (position i + 2).
          uint64_t hh = b;
          for (size_t j = i + 2; j < limit; j++) {
            hh = hh * kMul + p[j] - out_tab[p[j - kW]];
            if ((hh & mask_) == mask_) {
              cut_end = j + 1;
              break;
            }
          }
        }
      }
    }

    if (cut_end == 0) {
      if (limit == start + max_size_) {
        cut_end = limit;  // forced max-size cut
      } else {
        break;  // ran out of data before any boundary: tail chunk below
      }
    }
    emit(start, cut_end - start);
    start = cut_end;
  }
  if (start < n) {
    emit(start, n - start);
  }
}

}  // namespace

std::vector<Chunk> CdcChunker::split(const Buffer& object_data) const {
  std::vector<Chunk> out;
  const size_t n = object_data.size();
  out.reserve(n / avg_size_ + 2);
  cdc_scan(object_data.data(), n, min_size_, max_size_, mask_,
           [&](size_t start, size_t len) {
             out.push_back({start, object_data.slice(start, len)});
           });
  return out;
}

std::vector<WeakChunk> CdcChunker::split_with_weak(
    const Buffer& object_data) const {
  std::vector<WeakChunk> out;
  const size_t n = object_data.size();
  out.reserve(n / avg_size_ + 2);
  cdc_scan(object_data.data(), n, min_size_, max_size_, mask_,
           [&](size_t start, size_t len) {
             // Hash while the boundary scan's bytes are still resident.
             Buffer data = object_data.slice(start, len);
             const uint64_t w = WeakHasher::oneshot(data.span());
             out.push_back({start, std::move(data), w});
           });
  return out;
}

std::vector<Chunk> CdcChunker::split_reference(const Buffer& object_data) const {
  std::vector<Chunk> out;
  const uint8_t* p = object_data.data();
  const size_t n = object_data.size();

  size_t start = 0;
  RabinRolling rh;
  size_t i = 0;
  while (i < n) {
    rh.roll(p[i]);
    const size_t len = i + 1 - start;
    const bool boundary =
        (len >= min_size_ && rh.window_full() &&
         (rh.value() & mask_) == mask_) ||
        len >= max_size_;
    if (boundary) {
      out.push_back({start, object_data.slice(start, len)});
      start = i + 1;
      rh.reset();
    }
    i++;
  }
  if (start < n) {
    out.push_back({start, object_data.slice(start, n - start)});
  }
  return out;
}

}  // namespace gdedup
