#include "dedup/chunker.h"

#include <bit>
#include <cassert>

#include "hash/rabin.h"

namespace gdedup {

FixedChunker::FixedChunker(uint32_t chunk_size) : chunk_size_(chunk_size) {
  assert(chunk_size > 0);
}

std::vector<Chunk> FixedChunker::split(const Buffer& object_data) const {
  std::vector<Chunk> out;
  const size_t n = object_data.size();
  out.reserve(n / chunk_size_ + 1);
  for (size_t off = 0; off < n; off += chunk_size_) {
    const size_t len = std::min<size_t>(chunk_size_, n - off);
    out.push_back({off, object_data.slice(off, len)});
  }
  return out;
}

std::vector<uint64_t> FixedChunker::covering(uint64_t off, uint64_t len) const {
  std::vector<uint64_t> out;
  if (len == 0) return out;
  const uint64_t first = chunk_start(off);
  const uint64_t last = chunk_start(off + len - 1);
  for (uint64_t c = first; c <= last; c += chunk_size_) out.push_back(c);
  return out;
}

CdcChunker::CdcChunker(uint32_t min_size, uint32_t avg_size, uint32_t max_size)
    : min_size_(min_size), avg_size_(avg_size), max_size_(max_size) {
  assert(min_size >= RabinRolling::kWindow);
  assert(min_size <= avg_size && avg_size <= max_size);
  assert(std::has_single_bit(avg_size));
  mask_ = avg_size - 1;  // boundary probability 1/avg per byte
}

std::vector<Chunk> CdcChunker::split(const Buffer& object_data) const {
  std::vector<Chunk> out;
  const uint8_t* p = object_data.data();
  const size_t n = object_data.size();

  size_t start = 0;
  RabinRolling rh;
  size_t i = 0;
  while (i < n) {
    rh.roll(p[i]);
    const size_t len = i + 1 - start;
    const bool boundary =
        (len >= min_size_ && rh.window_full() &&
         (rh.value() & mask_) == mask_) ||
        len >= max_size_;
    if (boundary) {
      out.push_back({start, object_data.slice(start, len)});
      start = i + 1;
      rh.reset();
    }
    i++;
  }
  if (start < n) {
    out.push_back({start, object_data.slice(start, n - start)});
  }
  return out;
}

}  // namespace gdedup
