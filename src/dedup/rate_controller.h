#pragma once

// Watermark-based dedup rate control (Section 4.4.2).
//
// Foreground client I/O completions feed a one-second sliding window; the
// measured demand (IOPS, or bytes/s for sequential workloads) picks the
// regime:
//   below low watermark   -> background dedup unthrottled
//   between watermarks    -> 1 dedup I/O credited per `ios_per_dedup_mid`
//                            foreground I/Os (paper: 100)
//   above high watermark  -> 1 per `ios_per_dedup_high` (paper: 500)
// Credits accumulate fractionally per foreground op and are consumed by
// the engine one per chunk flush, so the dedup stream is proportional to —
// and strictly dominated by — the foreground stream.

#include <algorithm>
#include <cstdint>

#include "cluster/osd_map.h"
#include "sim/metrics.h"
#include "sim/scheduler.h"

namespace gdedup {

class RateController {
 public:
  explicit RateController(const DedupTierConfig& cfg)
      : enabled_(cfg.rate_control),
        by_bytes_(cfg.watermark_by_bytes),
        low_(cfg.watermark_by_bytes ? cfg.low_watermark_bps
                                    : cfg.low_watermark_iops),
        high_(cfg.watermark_by_bytes ? cfg.high_watermark_bps
                                     : cfg.high_watermark_iops),
        per_mid_(cfg.ios_per_dedup_mid),
        per_high_(cfg.ios_per_dedup_high) {}

  void on_foreground(SimTime now, uint64_t bytes = 1) {
    ops_.advance(now);
    bytes_.advance(now);
    ops_.add(now, 1);
    bytes_.add(now, bytes);
    if (!enabled_) return;  // disabled controller must not accrue credits
    const double demand = current_demand(now);
    if (demand <= low_) return;  // unthrottled regime; credits irrelevant
    const int per = demand > high_ ? per_high_ : per_mid_;
    credits_ = std::min(credits_ + 1.0 / per, kMaxCredits);
  }

  // Grant up to `want` dedup I/Os right now.
  int take(SimTime now, int want) {
    ops_.advance(now);
    bytes_.advance(now);
    if (!enabled_) return want;
    if (current_demand(now) <= low_) return want;
    // Floor with an epsilon: `per` accruals of 1/per must sum to a whole
    // credit even when the binary fractions land a few ulps short (e.g.
    // 3 * (1/3) = 0.99999...), otherwise the engine starves one extra
    // foreground op in the mid regime.
    const int whole = static_cast<int>(credits_ + 1e-9);
    const int grant = std::min(want, whole);
    credits_ = std::max(0.0, credits_ - grant);
    return grant;
  }

  double credits() const { return credits_; }

  double current_iops(SimTime now) const {
    return static_cast<double>(ops_.count(now));
  }
  double current_bps(SimTime now) const {
    return static_cast<double>(bytes_.count(now));
  }
  double current_demand(SimTime now) const {
    return by_bytes_ ? current_bps(now) : current_iops(now);
  }

  bool enabled() const { return enabled_; }

  // Current throttle regime for telemetry: 0 = unthrottled (demand at or
  // below the low watermark, or controller disabled), 1 = mid, 2 = above
  // the high watermark.  Pure read; never accrues or consumes credits.
  int regime(SimTime now) const {
    if (!enabled_) return 0;
    const double demand = current_demand(now);
    if (demand <= low_) return 0;
    return demand > high_ ? 2 : 1;
  }

 private:
  static constexpr double kMaxCredits = 256.0;

  bool enabled_;
  bool by_bytes_;
  double low_;
  double high_;
  int per_mid_;
  int per_high_;
  SlidingWindowCounter ops_{kSecond};
  SlidingWindowCounter bytes_{kSecond};
  double credits_ = 0;
};

}  // namespace gdedup
