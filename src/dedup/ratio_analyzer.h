#pragma once

// Deduplication-ratio accounting: global vs per-OSD local dedup.
//
// Reproduces the comparison of Figure 3 / Table 1.  Objects are placed by
// the same CRUSH map the cluster uses; "local" deduplication keeps one
// fingerprint set per OSD (a per-node block-level dedup appliance, the
// paper's Section 2.2 strawman), "global" keeps a single content-addressed
// space.  Ratios exclude redundancy-scheme copies, exactly as the paper
// computes them ("calculated under excluding the redundancy caused by
// replication"): each object is counted once, at its primary.

#include <cstdint>
#include <map>
#include <unordered_set>

#include "cluster/osd_map.h"
#include "common/buffer.h"
#include "dedup/chunker.h"
#include "hash/fingerprint.h"

namespace gdedup {

struct DedupRatioReport {
  uint64_t logical_bytes = 0;
  uint64_t unique_bytes = 0;
  double ratio() const {
    if (logical_bytes == 0) return 0.0;
    return 1.0 - static_cast<double>(unique_bytes) /
                     static_cast<double>(logical_bytes);
  }
  double percent() const { return ratio() * 100.0; }
};

class RatioAnalyzer {
 public:
  RatioAnalyzer(const OsdMap* map, PoolId pool, uint32_t chunk_size,
                FingerprintAlgo algo = FingerprintAlgo::kSha256);

  // Feed one logical object (whole image).  Placement comes from the map.
  void add_object(const std::string& oid, const Buffer& data);

  DedupRatioReport global() const { return global_; }
  DedupRatioReport local() const;  // summed over per-OSD unique sets

  // Per-OSD logical bytes landed (placement balance diagnostics).
  const std::map<OsdId, DedupRatioReport>& per_osd() const { return per_osd_; }

 private:
  const OsdMap* map_;
  PoolId pool_;
  FixedChunker chunker_;
  FingerprintAlgo algo_;

  DedupRatioReport global_;
  std::unordered_set<Fingerprint> global_seen_;
  std::map<OsdId, DedupRatioReport> per_osd_;
  std::map<OsdId, std::unordered_set<Fingerprint>> local_seen_;
};

}  // namespace gdedup
