#pragma once

// Deduplication-ratio accounting: global vs per-OSD local dedup.
//
// Reproduces the comparison of Figure 3 / Table 1.  Objects are placed by
// the same CRUSH map the cluster uses; "local" deduplication keeps one
// fingerprint set per OSD (a per-node block-level dedup appliance, the
// paper's Section 2.2 strawman), "global" keeps a single content-addressed
// space.  Ratios exclude redundancy-scheme copies, exactly as the paper
// computes them ("calculated under excluding the redundancy caused by
// replication"): each object is counted once, at its primary.
//
// With a parallel ExecPool, the chunk scan (split + per-chunk fingerprint)
// of each object is submitted as a kernel job and the set accounting is
// applied in submission order when a report is read — same numbers as the
// serial path, but the byte work overlaps across objects.

#include <cstdint>
#include <deque>
#include <map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "cluster/osd_map.h"
#include "common/buffer.h"
#include "dedup/chunker.h"
#include "hash/fingerprint.h"
#include "sim/exec_pool.h"

namespace gdedup {

struct DedupRatioReport {
  uint64_t logical_bytes = 0;
  uint64_t unique_bytes = 0;
  double ratio() const {
    if (logical_bytes == 0) return 0.0;
    return 1.0 - static_cast<double>(unique_bytes) /
                     static_cast<double>(logical_bytes);
  }
  double percent() const { return ratio() * 100.0; }
};

class RatioAnalyzer {
 public:
  // One scanned object: (fingerprint, length) per chunk, in offset order.
  using ChunkScan = std::vector<std::pair<Fingerprint, uint64_t>>;

  RatioAnalyzer(const OsdMap* map, PoolId pool, uint32_t chunk_size,
                FingerprintAlgo algo = FingerprintAlgo::kSha256,
                ExecPool* exec_pool = nullptr);

  // Feed one logical object (whole image).  Placement comes from the map.
  // With a parallel exec pool the scan is deferred to a worker; reports
  // drain pending scans first.
  void add_object(const std::string& oid, const Buffer& data);

  DedupRatioReport global() {
    drain();
    return global_;
  }
  DedupRatioReport local();  // summed over per-OSD unique sets

  // Per-OSD logical bytes landed (placement balance diagnostics).
  const std::map<OsdId, DedupRatioReport>& per_osd() {
    drain();
    return per_osd_;
  }

 private:
  void account(OsdId primary, const ChunkScan& scan);
  void drain();  // join pending scans in submission order

  const OsdMap* map_;
  PoolId pool_;
  FixedChunker chunker_;
  FingerprintAlgo algo_;
  ExecPool* exec_pool_;

  struct Pending {
    OsdId primary;
    KernelFuture<ChunkScan> fut;
  };
  std::deque<Pending> pending_;

  DedupRatioReport global_;
  std::unordered_set<Fingerprint> global_seen_;
  std::map<OsdId, DedupRatioReport> per_osd_;
  std::map<OsdId, std::unordered_set<Fingerprint>> local_seen_;
};

}  // namespace gdedup
