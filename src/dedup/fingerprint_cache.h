#pragma once

// COW-aware fingerprint memoization.
//
// Fingerprinting dominates flush CPU (the paper fingerprints every dirty
// chunk's real bytes).  Buffers are copy-on-write and carry a globally
// unique mutation generation (see Buffer::generation()), so the tuple
// (data pointer, length, generation, algo) identifies chunk *content*
// exactly: a noop re-flush or a re-dirtied-but-unchanged chunk presents the
// same tuple and can skip hashing entirely.  Generations are never reused,
// which makes recycled allocations at the same address harmless (no ABA).

#include <cstdint>
#include <functional>

#include "common/buffer.h"
#include "common/lru.h"
#include "hash/fingerprint.h"

namespace gdedup {

struct FingerprintCacheKey {
  uintptr_t data = 0;
  size_t len = 0;
  uint64_t gen = 0;
  uint8_t algo = 0;

  bool operator==(const FingerprintCacheKey& o) const {
    return data == o.data && len == o.len && gen == o.gen && algo == o.algo;
  }
};

}  // namespace gdedup

template <>
struct std::hash<gdedup::FingerprintCacheKey> {
  size_t operator()(const gdedup::FingerprintCacheKey& k) const noexcept {
    uint64_t h = k.data;
    h = h * 0x9e3779b97f4a7c15ULL + k.len;
    h = h * 0x9e3779b97f4a7c15ULL + k.gen;
    h = h * 0x9e3779b97f4a7c15ULL + k.algo;
    return static_cast<size_t>(h ^ (h >> 32));
  }
};

namespace gdedup {

class FingerprintCache {
 public:
  using Key = FingerprintCacheKey;

  static constexpr size_t kDefaultCapacity = 8192;

  explicit FingerprintCache(size_t capacity = kDefaultCapacity)
      : lru_(capacity) {}

  // Buffers with no storage (default-constructed / empty) have no stable
  // identity to key on.
  static bool cacheable(const Buffer& b) {
    return b.storage_id() != nullptr && !b.empty();
  }

  const Fingerprint* find(const Buffer& b, FingerprintAlgo algo) {
    lookups_++;
    if (!cacheable(b)) return nullptr;
    const Fingerprint* fp = lru_.get(key_of(b, algo));
    if (fp != nullptr) hits_++;
    return fp;
  }

  void insert(const Buffer& b, FingerprintAlgo algo, const Fingerprint& fp) {
    if (!cacheable(b)) return;
    lru_.put(key_of(b, algo), fp);
  }

  uint64_t lookups() const { return lookups_; }
  uint64_t hits() const { return hits_; }
  size_t size() const { return lru_.size(); }

 private:
  static Key key_of(const Buffer& b, FingerprintAlgo algo) {
    return {reinterpret_cast<uintptr_t>(b.data()), b.size(), b.generation(),
            static_cast<uint8_t>(algo)};
  }

  LruMap<Key, Fingerprint> lru_;
  uint64_t lookups_ = 0;
  uint64_t hits_ = 0;
};

}  // namespace gdedup
