#pragma once

// COW-aware fingerprint memoization.
//
// Fingerprinting dominates flush CPU (the paper fingerprints every dirty
// chunk's real bytes).  Buffers are copy-on-write and carry a globally
// unique mutation generation (see Buffer::generation()), so the tuple
// (data pointer, length, generation, algo) identifies chunk *content*
// exactly: a noop re-flush or a re-dirtied-but-unchanged chunk presents the
// same tuple and can skip hashing entirely.  Generations are never reused,
// which makes recycled allocations at the same address harmless (no ABA).

#include <cstdint>
#include <functional>

#include "common/buffer.h"
#include "common/lru.h"
#include "hash/fingerprint.h"

namespace gdedup {

struct FingerprintCacheKey {
  uintptr_t data = 0;
  size_t len = 0;
  uint64_t gen = 0;
  uint8_t algo = 0;

  bool operator==(const FingerprintCacheKey& o) const {
    return data == o.data && len == o.len && gen == o.gen && algo == o.algo;
  }
};

}  // namespace gdedup

template <>
struct std::hash<gdedup::FingerprintCacheKey> {
  size_t operator()(const gdedup::FingerprintCacheKey& k) const noexcept {
    uint64_t h = k.data;
    h = h * 0x9e3779b97f4a7c15ULL + k.len;
    h = h * 0x9e3779b97f4a7c15ULL + k.gen;
    h = h * 0x9e3779b97f4a7c15ULL + k.algo;
    return static_cast<size_t>(h ^ (h >> 32));
  }
};

namespace gdedup {

class FingerprintCache {
 public:
  using Key = FingerprintCacheKey;

  // A memo entry also remembers the chunk's weak hash (when the fast path
  // computed one), so a memo hit can refresh the node's fingerprint index
  // (dedup/fingerprint_index.h) in O(1) — without it the two caches
  // drift: the memo keeps answering for a buffer identity while the index
  // evicts the content entry, and the next *different* buffer with the
  // same bytes pays a full SHA again.  kNoWeakHash marks entries inserted
  // with the fast path off.
  static constexpr uint64_t kNoWeakHash = 0;

  struct Entry {
    Fingerprint fp;
    uint64_t weak = kNoWeakHash;
  };

  static constexpr size_t kDefaultCapacity = 8192;

  explicit FingerprintCache(size_t capacity = kDefaultCapacity)
      : lru_(capacity) {}

  // Buffers with no storage (default-constructed / empty) have no stable
  // identity to key on.
  static bool cacheable(const Buffer& b) {
    return b.storage_id() != nullptr && !b.empty();
  }

  const Entry* find(const Buffer& b, FingerprintAlgo algo) {
    lookups_++;
    if (!cacheable(b)) return nullptr;
    const Entry* e = lru_.get(key_of(b, algo));
    if (e != nullptr) hits_++;
    return e;
  }

  void insert(const Buffer& b, FingerprintAlgo algo, const Fingerprint& fp,
              uint64_t weak = kNoWeakHash) {
    if (!cacheable(b)) return;
    lru_.put(key_of(b, algo), Entry{fp, weak});
  }

  uint64_t lookups() const { return lookups_; }
  uint64_t hits() const { return hits_; }
  size_t size() const { return lru_.size(); }

 private:
  static Key key_of(const Buffer& b, FingerprintAlgo algo) {
    return {reinterpret_cast<uintptr_t>(b.data()), b.size(), b.generation(),
            static_cast<uint8_t>(algo)};
  }

  LruMap<Key, Entry> lru_;
  uint64_t lookups_ = 0;
  uint64_t hits_ = 0;
};

}  // namespace gdedup
