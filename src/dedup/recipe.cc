#include "dedup/recipe.h"

#include <algorithm>
#include <optional>

#include "common/encoding.h"
#include "ec/reed_solomon.h"
#include "osd/cluster_context.h"
#include "osd/object_store.h"
#include "osd/osd.h"

namespace gdedup {

Buffer encode_recipe_chunk(const std::vector<ChunkMapEntry>& entries) {
  Encoder e;
  e.put_u32(kRecipeChunkMagic);
  e.put_u8(1);  // version
  e.put_varint(entries.size());
  for (const ChunkMapEntry& ent : entries) {
    Buffer packed = ChunkMap::encode_entry_packed(ent);
    e.put_varint(packed.size());
    for (size_t i = 0; i < packed.size(); i++) e.put_u8(packed.data()[i]);
  }
  return e.finish();
}

Result<std::vector<ChunkMapEntry>> decode_recipe_chunk(const Buffer& b) {
  Decoder d(b);
  uint32_t magic = 0;
  uint8_t ver = 0;
  uint64_t count = 0;
  if (auto s = d.get_u32(&magic); !s.is_ok()) return s;
  if (magic != kRecipeChunkMagic) return Status::corruption("bad recipe magic");
  if (auto s = d.get_u8(&ver); !s.is_ok()) return s;
  if (ver != 1) return Status::corruption("bad recipe version");
  if (auto s = d.get_varint(&count); !s.is_ok()) return s;
  std::vector<ChunkMapEntry> out;
  out.reserve(count);
  for (uint64_t i = 0; i < count; i++) {
    uint64_t n = 0;
    if (auto s = d.get_varint(&n); !s.is_ok()) return s;
    if (d.remaining() < n) return Status::corruption("short recipe entry");
    Buffer packed(n);
    for (uint64_t j = 0; j < n; j++) {
      uint8_t byte = 0;
      if (auto s = d.get_u8(&byte); !s.is_ok()) return s;
      packed.mutable_data()[j] = byte;
    }
    auto ent = ChunkMap::decode_entry_packed(packed);
    if (!ent.is_ok()) return ent.status();
    out.push_back(std::move(ent).value());
  }
  return out;
}

namespace {

// Stores to consult for (pool, oid): acting order first so the common
// case reads the primary's copy, then every other up OSD — a degraded
// placement can leave the only surviving copy outside the acting set
// until recovery backfills it.
std::vector<const ObjectStore*> candidate_stores(ClusterContext* ctx,
                                                 PoolId pool,
                                                 const std::string& oid) {
  std::vector<const ObjectStore*> out;
  std::vector<OsdId> order = ctx->osdmap().acting(pool, oid);
  for (OsdId id : ctx->osdmap().all_osds()) {
    if (std::find(order.begin(), order.end(), id) == order.end()) {
      order.push_back(id);
    }
  }
  for (OsdId id : order) {
    Osd* o = ctx->osd(id);
    if (o == nullptr || !o->is_up()) continue;
    const ObjectStore* st = o->store_if_exists(pool);
    if (st != nullptr) out.push_back(st);
  }
  return out;
}

}  // namespace

Result<Buffer> peek_chunk_content(ClusterContext* ctx, PoolId pool,
                                  const std::string& oid) {
  const PoolConfig& pcfg = ctx->osdmap().pool(pool);
  const ObjectKey key{pool, oid};
  if (pcfg.scheme == RedundancyScheme::kReplicated) {
    for (const ObjectStore* st : candidate_stores(ctx, pool, oid)) {
      auto data = st->read(key, 0, 0);
      if (data.is_ok()) return data;
    }
    return Status::not_found(oid);
  }
  // EC: gather shards from whichever up holders have them and decode.
  ReedSolomon rs(pcfg.ec_k, pcfg.ec_m);
  std::vector<std::optional<Buffer>> shards(
      static_cast<size_t>(pcfg.ec_k + pcfg.ec_m));
  uint64_t orig_len = 0;
  bool any = false;
  for (const ObjectStore* st : candidate_stores(ctx, pool, oid)) {
    auto data = st->read(key, 0, 0);
    auto shard_attr = st->getxattr(key, "ec.shard");
    if (!data.is_ok() || !shard_attr.is_ok()) continue;
    Decoder d(shard_attr.value());
    uint32_t idx = 0;
    if (!d.get_u32(&idx).is_ok() ||
        idx >= static_cast<uint32_t>(pcfg.ec_k + pcfg.ec_m)) {
      continue;
    }
    if (shards[idx].has_value()) continue;
    shards[idx] = std::move(data).value();
    any = true;
    auto len_attr = st->getxattr(key, "ec.orig_len");
    if (len_attr.is_ok()) {
      Decoder ld(len_attr.value());
      uint64_t v = 0;
      if (ld.get_u64(&v).is_ok()) orig_len = v;
    }
  }
  if (!any) return Status::not_found(oid);
  return rs.decode(shards, orig_len);
}

bool peek_chunk_exists(ClusterContext* ctx, PoolId pool,
                       const std::string& oid) {
  const OsdId primary = ctx->osdmap().primary(pool, oid);
  if (primary < 0) return false;
  Osd* o = ctx->osd(primary);
  return o != nullptr && o->is_up() && o->local_exists(pool, oid);
}

Result<ChunkMap> load_chunk_map_resolved(ClusterContext* ctx,
                                         const ObjectStore& store,
                                         const ObjectKey& key,
                                         uint64_t* bytes_read) {
  ChunkMap cm;
  for (const auto& [k, v] : store.omap_list(key, kChunkEntryPrefix)) {
    auto ent = ChunkMap::decode_entry_auto(v);
    if (!ent.is_ok()) return ent.status();
    ChunkMapEntry e = std::move(ent).value();
    e.inline_rec = true;
    if (bytes_read != nullptr) *bytes_read += k.size() + v.size();
    const uint64_t off = e.offset;
    cm.entries()[off] = std::move(e);
  }
  for (const auto& [k, v] : store.omap_list(key, kRecipeRecordPrefix)) {
    auto rec = RecipeRecord::decode(v);
    if (!rec.is_ok()) return rec.status();
    if (bytes_read != nullptr) *bytes_read += k.size() + v.size();
    RecipeRecord r = std::move(rec).value();
    const uint64_t base = r.base;
    cm.recipes()[base] = std::move(r);
  }
  for (const auto& [base, rec] : cm.recipes()) {
    auto content = peek_chunk_content(ctx, rec.chunk_pool, rec.chunk_id);
    if (!content.is_ok()) {
      // Every holder of the recipe chunk is down.  The inline entries are
      // still authoritative for their offsets, but the map is incomplete:
      // flag it so ref enumerators (GC, invariants) act conservatively.
      cm.set_unresolved(true);
      continue;
    }
    if (bytes_read != nullptr) *bytes_read += content->size();
    auto members = decode_recipe_chunk(content.value());
    if (!members.is_ok()) return members.status();
    for (ChunkMapEntry& e : members.value()) {
      // Inline overlay wins: a shadowed member was mutated after the
      // recipe was written and its inline record carries the truth.
      if (cm.find(e.offset) != nullptr) continue;
      e.inline_rec = false;
      const uint64_t off = e.offset;
      cm.entries()[off] = std::move(e);
    }
  }
  return cm;
}

}  // namespace gdedup
