#pragma once

// Chunking algorithms.
//
// The deployed design uses fixed-size (static) chunking: Ceph's small
// random writes are already CPU-bound, so the paper rejects content-
// defined chunking for the data path (Section 5).  The CDC chunker is
// provided for the ablation benchmarks that quantify that trade-off.

#include <cstdint>
#include <vector>

#include "common/buffer.h"

namespace gdedup {

struct Chunk {
  uint64_t offset = 0;  // offset within the source object
  Buffer data;
};

// A chunk plus its weak content hash (hash/weak_hash.h).  Produced by the
// fused split_with_weak() passes: the weak hash of each chunk is computed
// the moment its boundary is known, while the bytes are still cache-hot
// from the boundary scan, instead of a second cold sweep over the object
// after chunking completes.
struct WeakChunk {
  uint64_t offset = 0;
  Buffer data;
  uint64_t weak = 0;
};

// Fixed-size chunking on a stable grid: chunk i covers
// [i*chunk_size, (i+1)*chunk_size), so overwrites map to the same chunk
// slots regardless of write alignment.
class FixedChunker {
 public:
  explicit FixedChunker(uint32_t chunk_size);

  uint32_t chunk_size() const { return chunk_size_; }

  // Split a whole object image into grid chunks (last may be short).
  std::vector<Chunk> split(const Buffer& object_data) const;

  // split() fused with per-chunk weak hashing (one touch per byte).
  std::vector<WeakChunk> split_with_weak(const Buffer& object_data) const;

  // Grid arithmetic for partial-write handling.
  uint64_t chunk_start(uint64_t offset) const {
    return offset / chunk_size_ * chunk_size_;
  }
  uint64_t chunk_index(uint64_t offset) const { return offset / chunk_size_; }

  // Chunk-grid slots intersecting [off, off+len) — {start offsets}.
  std::vector<uint64_t> covering(uint64_t off, uint64_t len) const;

 private:
  uint32_t chunk_size_;
};

// Content-defined chunking with a Rabin rolling hash: a boundary is
// declared where (hash & mask) == magic, bounded by [min, max] sizes.
class CdcChunker {
 public:
  CdcChunker(uint32_t min_size, uint32_t avg_size, uint32_t max_size);

  // Fast path: skips straight to each chunk's candidate region (a boundary
  // needs len >= min_size and a full window, and min_size >= kWindow, so
  // only the last kWindow bytes before the candidate region affect the
  // hash).  Bit-identical to split_reference() — tests assert it.
  std::vector<Chunk> split(const Buffer& object_data) const;

  // The original byte-at-a-time scalar implementation, kept as the
  // equivalence oracle for the fast path.
  std::vector<Chunk> split_reference(const Buffer& object_data) const;

  // split() fused with per-chunk weak hashing.  Same boundaries as
  // split(); each chunk's weak64 is computed right after its cut is
  // found, while the scanned bytes are cache-resident.
  std::vector<WeakChunk> split_with_weak(const Buffer& object_data) const;

  uint32_t min_size() const { return min_size_; }
  uint32_t avg_size() const { return avg_size_; }
  uint32_t max_size() const { return max_size_; }

 private:
  uint32_t min_size_;
  uint32_t avg_size_;
  uint32_t max_size_;
  uint64_t mask_;
};

}  // namespace gdedup
