#include "dedup/invariants.h"

#include <algorithm>

#include "common/encoding.h"
#include "dedup/chunk_map.h"
#include "dedup/recipe.h"
#include "osd/osd.h"

namespace gdedup {

namespace dedup_walk {

std::map<ObjectKey, std::vector<OsdId>> holders(ClusterContext* ctx,
                                                PoolId pool) {
  std::map<ObjectKey, std::vector<OsdId>> out;
  for (OsdId id : ctx->osdmap().all_osds()) {
    Osd* o = ctx->osd(id);
    if (o == nullptr || !o->is_up()) continue;
    const ObjectStore* st = o->store_if_exists(pool);
    if (st == nullptr) continue;
    for (const auto& key : st->list(pool)) {
      out[key].push_back(id);
    }
  }
  return out;
}

std::map<std::string, std::set<ChunkRef>> live_refs(ClusterContext* ctx,
                                                    PoolId meta_pool,
                                                    bool any_holder,
                                                    bool* any_unresolved) {
  std::map<std::string, std::set<ChunkRef>> live;
  for (OsdId id : ctx->osdmap().all_osds()) {
    Osd* o = ctx->osd(id);
    if (o == nullptr || !o->is_up()) continue;
    const ObjectStore* st = o->store_if_exists(meta_pool);
    if (st == nullptr) continue;
    for (const auto& key : st->list(meta_pool)) {
      // Primary copies are authoritative; replica copies are unioned in
      // only when the caller asked for the conservative degraded-state
      // view (see the header comment).
      if (!any_holder && ctx->osdmap().primary(meta_pool, key.oid) != id) {
        continue;
      }
      auto cm = load_chunk_map_resolved(ctx, *st, key);
      if (!cm.is_ok()) continue;
      if (cm->unresolved() && any_unresolved != nullptr) {
        *any_unresolved = true;
      }
      for (const auto& [off, e] : cm->entries()) {
        if (e.flushed()) {
          live[e.chunk_id].insert(ChunkRef{meta_pool, key.oid, off});
        }
      }
      for (const auto& [base, rec] : cm->recipes()) {
        live[rec.chunk_id].insert(
            ChunkRef{meta_pool, key.oid, kRecipeRefBit | base});
      }
    }
  }
  return live;
}

bool object_busy(ClusterContext* ctx, PoolId meta_pool,
                 const std::string& oid) {
  for (OsdId id : ctx->osdmap().all_osds()) {
    Osd* o = ctx->osd(id);
    if (o == nullptr || !o->is_up()) continue;
    TierService* t = o->tier(meta_pool);
    if (t != nullptr && t->object_busy(oid)) return true;
  }
  return false;
}

size_t total_backlog(ClusterContext* ctx, PoolId meta_pool) {
  size_t total = 0;
  for (OsdId id : ctx->osdmap().all_osds()) {
    Osd* o = ctx->osd(id);
    if (o == nullptr || !o->is_up()) continue;
    TierService* t = o->tier(meta_pool);
    if (t != nullptr) total += t->dirty_backlog();
  }
  return total;
}

}  // namespace dedup_walk

std::string InvariantReport::to_string() const {
  std::string out = "invariants: objects=" + std::to_string(objects_checked) +
                    " entries=" + std::to_string(entries_checked) +
                    " chunks=" + std::to_string(chunks_checked) +
                    " refs=" + std::to_string(refs_checked) +
                    " bytes_compared=" + std::to_string(bytes_compared) +
                    " stray_copies=" + std::to_string(stray_copies) +
                    " violations=" + std::to_string(violations.size()) + "\n";
  for (const auto& v : violations) out += "  VIOLATION: " + v + "\n";
  return out;
}

void InvariantChecker::check_conservation(InvariantReport* rep) const {
  bool unresolved = false;
  const auto live = dedup_walk::live_refs(ctx_, meta_, /*any_holder=*/false,
                                          &unresolved);

  // Metadata side: every primary chunk map must be quiesced, and every
  // flushed entry must find its chunk (with the matching ref recorded) on
  // the chunk's primary.
  for (const auto& [key, who] : dedup_walk::holders(ctx_, meta_)) {
    const auto acting = ctx_->osdmap().acting(meta_, key.oid);
    for (OsdId id : who) {
      if (std::find(acting.begin(), acting.end(), id) == acting.end()) {
        rep->stray_copies++;
      }
    }
    const OsdId prim = ctx_->osdmap().primary(meta_, key.oid);
    if (prim < 0 || std::find(who.begin(), who.end(), prim) == who.end()) {
      rep->violations.push_back("object " + key.oid +
                                " has no copy on its primary");
      continue;
    }
    Osd* po = ctx_->osd(prim);
    const ObjectStore* st = po ? po->store_if_exists(meta_) : nullptr;
    if (st == nullptr) continue;
    rep->objects_checked++;
    auto cm = load_chunk_map_resolved(ctx_, *st, key);
    if (!cm.is_ok()) {
      rep->violations.push_back("object " + key.oid +
                                " chunk map undecodable");
      continue;
    }
    if (cm->unresolved()) {
      rep->violations.push_back("object " + key.oid +
                                " has unresolvable recipe chunks");
      continue;
    }
    for (const auto& [base, rec] : cm->recipes()) {
      rep->entries_checked++;
      const std::string at =
          key.oid + "@recipe:" + std::to_string(base);
      const OsdId rprim = ctx_->osdmap().primary(chunks_, rec.chunk_id);
      Osd* ro = rprim >= 0 ? ctx_->osd(rprim) : nullptr;
      if (ro == nullptr || !ro->local_exists(chunks_, rec.chunk_id)) {
        rep->violations.push_back("lost recipe chunk: " + at +
                                  " references " + rec.chunk_id +
                                  " which is not on its primary");
        continue;
      }
      std::vector<ChunkRef> rrefs;
      if (auto raw = ro->local_getxattr(chunks_, rec.chunk_id, kRefsXattr);
          raw.is_ok()) {
        if (auto dec = decode_refs(raw.value()); dec.is_ok()) {
          rrefs = std::move(dec).value();
        }
      }
      const ChunkRef want{meta_, key.oid, kRecipeRefBit | base};
      if (std::find(rrefs.begin(), rrefs.end(), want) == rrefs.end()) {
        rep->violations.push_back("missing ref: recipe chunk " +
                                  rec.chunk_id + " does not record holder " +
                                  at);
      }
    }
    for (const auto& [off, e] : cm->entries()) {
      rep->entries_checked++;
      const std::string at = key.oid + "@" + std::to_string(off);
      if (e.dirty) {
        rep->violations.push_back("not quiesced: entry " + at +
                                  " still dirty");
      }
      if (!e.flushed()) continue;
      const OsdId cprim = ctx_->osdmap().primary(chunks_, e.chunk_id);
      Osd* co = cprim >= 0 ? ctx_->osd(cprim) : nullptr;
      if (co == nullptr || !co->local_exists(chunks_, e.chunk_id)) {
        rep->violations.push_back("lost chunk: entry " + at + " references " +
                                  e.chunk_id + " which is not on its primary");
        continue;
      }
      std::vector<ChunkRef> refs;
      if (auto raw = co->local_getxattr(chunks_, e.chunk_id, kRefsXattr);
          raw.is_ok()) {
        if (auto dec = decode_refs(raw.value()); dec.is_ok()) {
          refs = std::move(dec).value();
        }
      }
      const ChunkRef want{meta_, key.oid, off};
      if (std::find(refs.begin(), refs.end(), want) == refs.end()) {
        rep->violations.push_back("missing ref: chunk " + e.chunk_id +
                                  " does not record holder " + at);
      }
    }
  }

  // Chunk side: every chunk must be reachable (non-empty refs) and every
  // recorded ref must match a flushed entry.
  for (const auto& [key, who] : dedup_walk::holders(ctx_, chunks_)) {
    rep->chunks_checked++;
    const auto acting = ctx_->osdmap().acting(chunks_, key.oid);
    for (OsdId id : who) {
      if (std::find(acting.begin(), acting.end(), id) == acting.end()) {
        rep->stray_copies++;
      }
    }
    const OsdId prim = ctx_->osdmap().primary(chunks_, key.oid);
    if (prim < 0 || std::find(who.begin(), who.end(), prim) == who.end()) {
      rep->violations.push_back("chunk " + key.oid +
                                " has no copy on its primary");
      continue;
    }
    Osd* o = ctx_->osd(prim);
    std::vector<ChunkRef> refs;
    bool decoded = false;
    if (auto raw = o->local_getxattr(chunks_, key.oid, kRefsXattr);
        raw.is_ok()) {
      if (auto dec = decode_refs(raw.value()); dec.is_ok()) {
        refs = std::move(dec).value();
        decoded = true;
      }
    }
    if (!decoded || refs.empty()) {
      rep->violations.push_back("unreachable chunk: " + key.oid +
                                " has no recorded refs");
      continue;
    }
    const auto live_it = live.find(key.oid);
    for (const auto& r : refs) {
      rep->refs_checked++;
      const bool ok = r.pool == meta_ && live_it != live.end() &&
                      live_it->second.count(r) > 0;
      // An unresolved map elsewhere means `live` is incomplete — absence
      // from it no longer proves staleness, so skip the accusation.
      if (!ok && !unresolved) {
        rep->violations.push_back("stale ref: chunk " + key.oid +
                                  " records absent holder " + r.oid + "@" +
                                  std::to_string(r.offset));
      }
    }
  }
}

InvariantReport InvariantChecker::check_metadata() const {
  InvariantReport rep;
  check_conservation(&rep);
  std::sort(rep.violations.begin(), rep.violations.end());
  return rep;
}

InvariantReport InvariantChecker::check(
    const std::map<std::string, Buffer>& oracle,
    const std::set<std::string>& removed, const ReadFn& read_fn) const {
  InvariantReport rep;
  check_conservation(&rep);

  for (const auto& [oid, want] : oracle) {
    auto r = read_fn(oid);
    if (!r.is_ok()) {
      rep.violations.push_back("readback failed: " + oid + " (" +
                               std::string(code_name(r.status().code())) +
                               ")");
      continue;
    }
    rep.bytes_compared += want.size();
    if (!r.value().content_equals(want)) {
      // Locate the divergence: a chunk-aligned run points at the dedup
      // layer, a sub-chunk run at the overlay/merge path.
      const Buffer& got = r.value();
      const size_t n = std::min<size_t>(got.size(), want.size());
      size_t first = n;
      size_t last = 0;
      for (size_t i = 0; i < n; i++) {
        if (got.data()[i] != want.data()[i]) {
          if (first == n) first = i;
          last = i;
        }
      }
      size_t zeros = 0;
      for (size_t i = first; i <= last && i < n; i++) {
        if (got.data()[i] == 0) zeros++;
      }
      rep.violations.push_back(
          "readback mismatch: " + oid + " (got " +
          std::to_string(got.size()) + " bytes, want " +
          std::to_string(want.size()) + ", diff bytes [" +
          std::to_string(first) + ", " + std::to_string(last) +
          "], got[first]=" + std::to_string(got.data()[first]) +
          " want[first]=" + std::to_string(want.data()[first]) +
          " zeros_in_got_range=" + std::to_string(zeros) + ")");
    }
  }
  for (const auto& oid : removed) {
    if (auto r = read_fn(oid); r.is_ok()) {
      rep.violations.push_back("removed object still readable: " + oid);
    }
  }

  std::sort(rep.violations.begin(), rep.violations.end());
  return rep;
}

}  // namespace gdedup
