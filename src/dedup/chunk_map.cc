#include "dedup/chunk_map.h"

#include <algorithm>
#include <cstdio>

#include "common/encoding.h"
#include "hash/fingerprint.h"
#include "osd/object_store.h"

namespace gdedup {

namespace {
// Packed-entry flag byte: low bits mirror the legacy flags, high bits
// describe which optional fields follow.
constexpr uint8_t kPkCached = 1;
constexpr uint8_t kPkDirty = 2;
constexpr uint8_t kPkContainer = 4;
constexpr uint8_t kPkHasChunkOff = 8;
// Chunk-id kind in bits 4-5: 0 = empty (unflushed), 1 = binary
// fingerprint (algo byte + raw digest), 2 = verbatim string.
constexpr uint8_t kPkIdShift = 4;
constexpr uint8_t kPkIdMask = 0x30;
constexpr uint8_t kPkIdNone = 0;
constexpr uint8_t kPkIdFp = 1;
constexpr uint8_t kPkIdRaw = 2;

size_t algo_digest_len(FingerprintAlgo a) {
  switch (a) {
    case FingerprintAlgo::kSha1:
      return 20;
    case FingerprintAlgo::kSha256:
      return 32;
  }
  return 0;
}
}  // namespace

const ChunkMapEntry* ChunkMap::find(uint64_t offset) const {
  auto it = entries_.find(offset);
  return it == entries_.end() ? nullptr : &it->second;
}

ChunkMapEntry* ChunkMap::find(uint64_t offset) {
  auto it = entries_.find(offset);
  return it == entries_.end() ? nullptr : &it->second;
}

ChunkMapEntry& ChunkMap::obtain(uint64_t offset, uint32_t length) {
  ChunkMapEntry& e = entries_[offset];
  e.offset = offset;
  e.length = std::max(e.length, length);
  return e;
}

bool ChunkMap::erase(uint64_t offset) { return entries_.erase(offset) > 0; }

bool ChunkMap::any_dirty() const {
  for (const auto& [off, e] : entries_) {
    if (e.dirty) return true;
  }
  return false;
}

uint64_t ChunkMap::logical_end() const {
  uint64_t end = 0;
  for (const auto& [off, e] : entries_) {
    end = std::max(end, e.offset + e.length);
  }
  return end;
}

Buffer ChunkMap::encode() const {
  Encoder e;
  e.put_u32(static_cast<uint32_t>(entries_.size()));
  for (const auto& [off, ent] : entries_) {
    e.put_bytes(encode_entry(ent));
  }
  return e.finish();
}

std::string ChunkMap::omap_key(uint64_t offset) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%s%016llx", kChunkEntryPrefix,
                static_cast<unsigned long long>(offset));
  return buf;
}

Buffer ChunkMap::encode_entry(const ChunkMapEntry& ent) {
  Encoder ee;
  ee.put_u64(ent.offset);
  ee.put_u32(ent.length);
  ee.put_u8(static_cast<uint8_t>((ent.cached ? 1 : 0) | (ent.dirty ? 2 : 0) |
                                 (ent.container ? 4 : 0)));
  ee.put_string(ent.chunk_id);
  // Trailing container offset: encodes as zeros for ordinary chunks, which
  // is byte-identical to the fixed-footprint padding below — the on-disk
  // format (and the omap-bytes accounting the determinism digest folds in)
  // only changes for container members.
  ee.put_u64(ent.chunk_off);
  Buffer body = ee.finish();
  // Fixed per-entry footprint (the paper's 150 bytes per chunk entry).
  Buffer padded(kEntryEncodedBytes);
  std::memcpy(padded.mutable_data(), body.data(),
              std::min(body.size(), padded.size()));
  return padded;
}

Result<ChunkMapEntry> ChunkMap::decode_entry(const Buffer& b) {
  Decoder ed(b);
  ChunkMapEntry ent;
  uint8_t flags = 0;
  if (auto s = ed.get_u64(&ent.offset); !s.is_ok()) return s;
  if (auto s = ed.get_u32(&ent.length); !s.is_ok()) return s;
  if (auto s = ed.get_u8(&flags); !s.is_ok()) return s;
  if (auto s = ed.get_string(&ent.chunk_id); !s.is_ok()) return s;
  // Container offset rides after the chunk id; entries written before the
  // field existed (or handed to tests unpadded) decode it as absent = 0.
  if (auto s = ed.get_u64(&ent.chunk_off); !s.is_ok()) ent.chunk_off = 0;
  ent.cached = (flags & 1) != 0;
  ent.dirty = (flags & 2) != 0;
  ent.container = (flags & 4) != 0;
  return ent;
}

Buffer ChunkMap::encode_entry_packed(const ChunkMapEntry& ent) {
  Encoder ee;
  uint8_t flags = static_cast<uint8_t>((ent.cached ? kPkCached : 0) |
                                       (ent.dirty ? kPkDirty : 0) |
                                       (ent.container ? kPkContainer : 0));
  if (ent.chunk_off != 0) flags |= kPkHasChunkOff;
  auto fp = ent.chunk_id.empty() ? Result<Fingerprint>(Status::not_found(""))
                                 : Fingerprint::from_hex(ent.chunk_id);
  const uint8_t idkind = ent.chunk_id.empty() ? kPkIdNone
                         : fp.is_ok()        ? kPkIdFp
                                             : kPkIdRaw;
  flags |= static_cast<uint8_t>(idkind << kPkIdShift);
  ee.put_u8(flags);
  ee.put_varint(ent.offset);
  ee.put_varint(ent.length);
  if (idkind == kPkIdFp) {
    const Fingerprint& f = fp.value();
    ee.put_u8(static_cast<uint8_t>(f.algo()));
    for (uint8_t b : f.digest()) ee.put_u8(b);
  } else if (idkind == kPkIdRaw) {
    ee.put_varint(ent.chunk_id.size());
    for (char c : ent.chunk_id) ee.put_u8(static_cast<uint8_t>(c));
  }
  if (ent.chunk_off != 0) ee.put_varint(ent.chunk_off);
  // Size is the legacy/packed format discriminator, so a packed entry
  // must never land on exactly the legacy footprint.
  if (ee.size() == kEntryEncodedBytes) ee.put_u8(0);
  return ee.finish();
}

Result<ChunkMapEntry> ChunkMap::decode_entry_packed(const Buffer& b) {
  Decoder ed(b);
  ChunkMapEntry ent;
  uint8_t flags = 0;
  uint64_t len = 0;
  if (auto s = ed.get_u8(&flags); !s.is_ok()) return s;
  if (auto s = ed.get_varint(&ent.offset); !s.is_ok()) return s;
  if (auto s = ed.get_varint(&len); !s.is_ok()) return s;
  ent.length = static_cast<uint32_t>(len);
  const uint8_t idkind = (flags & kPkIdMask) >> kPkIdShift;
  if (idkind == kPkIdFp) {
    uint8_t algo = 0;
    if (auto s = ed.get_u8(&algo); !s.is_ok()) return s;
    const size_t dlen = algo_digest_len(static_cast<FingerprintAlgo>(algo));
    if (dlen == 0 || ed.remaining() < dlen) {
      return Status::corruption("bad packed fingerprint");
    }
    std::string hx(fingerprint_algo_name(static_cast<FingerprintAlgo>(algo)));
    hx.push_back(':');
    static const char* kHex = "0123456789abcdef";
    for (size_t i = 0; i < dlen; i++) {
      uint8_t byte = 0;
      if (auto s = ed.get_u8(&byte); !s.is_ok()) return s;
      hx.push_back(kHex[byte >> 4]);
      hx.push_back(kHex[byte & 0xf]);
    }
    ent.chunk_id = std::move(hx);
  } else if (idkind == kPkIdRaw) {
    uint64_t n = 0;
    if (auto s = ed.get_varint(&n); !s.is_ok()) return s;
    if (ed.remaining() < n) return Status::corruption("short packed id");
    ent.chunk_id.reserve(n);
    for (uint64_t i = 0; i < n; i++) {
      uint8_t c = 0;
      if (auto s = ed.get_u8(&c); !s.is_ok()) return s;
      ent.chunk_id.push_back(static_cast<char>(c));
    }
  } else if (idkind != kPkIdNone) {
    return Status::corruption("bad packed id kind");
  }
  if (flags & kPkHasChunkOff) {
    if (auto s = ed.get_varint(&ent.chunk_off); !s.is_ok()) return s;
  }
  ent.cached = (flags & kPkCached) != 0;
  ent.dirty = (flags & kPkDirty) != 0;
  ent.container = (flags & kPkContainer) != 0;
  return ent;
}

Result<ChunkMapEntry> ChunkMap::decode_entry_auto(const Buffer& b) {
  // The packed encoder guarantees it never emits kEntryEncodedBytes.
  if (b.size() == kEntryEncodedBytes) return decode_entry(b);
  return decode_entry_packed(b);
}

std::string RecipeRecord::omap_key(uint64_t base) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%s%016llx", kRecipeRecordPrefix,
                static_cast<unsigned long long>(base));
  return buf;
}

Buffer RecipeRecord::encode() const {
  Encoder e;
  e.put_u8(1);  // version
  e.put_varint(static_cast<uint64_t>(chunk_pool));
  e.put_varint(base);
  e.put_varint(count);
  // Recipe chunk ids are always fingerprint hex (the content address of
  // the packed window); store them binary like packed entries do.
  auto fp = Fingerprint::from_hex(chunk_id);
  if (fp.is_ok()) {
    e.put_u8(1);
    e.put_u8(static_cast<uint8_t>(fp.value().algo()));
    for (uint8_t b : fp.value().digest()) e.put_u8(b);
  } else {
    e.put_u8(2);
    e.put_string(chunk_id);
  }
  return e.finish();
}

Result<RecipeRecord> RecipeRecord::decode(const Buffer& b) {
  Decoder d(b);
  RecipeRecord r;
  uint8_t ver = 0;
  if (auto s = d.get_u8(&ver); !s.is_ok()) return s;
  if (ver != 1) return Status::corruption("bad recipe record version");
  uint64_t pool = 0, count = 0;
  if (auto s = d.get_varint(&pool); !s.is_ok()) return s;
  if (auto s = d.get_varint(&r.base); !s.is_ok()) return s;
  if (auto s = d.get_varint(&count); !s.is_ok()) return s;
  r.chunk_pool = static_cast<PoolId>(pool);
  r.count = static_cast<uint32_t>(count);
  uint8_t idkind = 0;
  if (auto s = d.get_u8(&idkind); !s.is_ok()) return s;
  if (idkind == 1) {
    uint8_t algo = 0;
    if (auto s = d.get_u8(&algo); !s.is_ok()) return s;
    const size_t dlen = algo_digest_len(static_cast<FingerprintAlgo>(algo));
    if (dlen == 0 || d.remaining() < dlen) {
      return Status::corruption("bad recipe fingerprint");
    }
    std::string hx(fingerprint_algo_name(static_cast<FingerprintAlgo>(algo)));
    hx.push_back(':');
    static const char* kHex = "0123456789abcdef";
    for (size_t i = 0; i < dlen; i++) {
      uint8_t byte = 0;
      if (auto s = d.get_u8(&byte); !s.is_ok()) return s;
      hx.push_back(kHex[byte >> 4]);
      hx.push_back(kHex[byte & 0xf]);
    }
    r.chunk_id = std::move(hx);
  } else if (idkind == 2) {
    if (auto s = d.get_string(&r.chunk_id); !s.is_ok()) return s;
  } else {
    return Status::corruption("bad recipe id kind");
  }
  return r;
}

Result<ChunkMap> load_chunk_map(const ObjectStore& store,
                                const ObjectKey& key) {
  ChunkMap cm;
  for (const auto& [k, v] : store.omap_list(key, kChunkEntryPrefix)) {
    auto ent = ChunkMap::decode_entry_auto(v);
    if (!ent.is_ok()) return ent.status();
    ChunkMapEntry e = std::move(ent).value();
    e.inline_rec = true;
    const uint64_t off = e.offset;
    cm.entries()[off] = std::move(e);
  }
  return cm;
}

Result<ChunkMap> ChunkMap::decode(const Buffer& b) {
  ChunkMap cm;
  Decoder d(b);
  uint32_t n = 0;
  if (auto s = d.get_u32(&n); !s.is_ok()) return s;
  for (uint32_t i = 0; i < n; i++) {
    Buffer padded;
    if (auto s = d.get_bytes(&padded); !s.is_ok()) return s;
    auto ent = decode_entry(padded);
    if (!ent.is_ok()) return ent.status();
    ChunkMapEntry e = std::move(ent).value();
    cm.entries_[e.offset] = std::move(e);
  }
  return cm;
}

}  // namespace gdedup
