#include "dedup/chunk_map.h"

#include <algorithm>
#include <cstdio>

#include "common/encoding.h"
#include "osd/object_store.h"

namespace gdedup {

const ChunkMapEntry* ChunkMap::find(uint64_t offset) const {
  auto it = entries_.find(offset);
  return it == entries_.end() ? nullptr : &it->second;
}

ChunkMapEntry* ChunkMap::find(uint64_t offset) {
  auto it = entries_.find(offset);
  return it == entries_.end() ? nullptr : &it->second;
}

ChunkMapEntry& ChunkMap::obtain(uint64_t offset, uint32_t length) {
  ChunkMapEntry& e = entries_[offset];
  e.offset = offset;
  e.length = std::max(e.length, length);
  return e;
}

bool ChunkMap::erase(uint64_t offset) { return entries_.erase(offset) > 0; }

bool ChunkMap::any_dirty() const {
  for (const auto& [off, e] : entries_) {
    if (e.dirty) return true;
  }
  return false;
}

uint64_t ChunkMap::logical_end() const {
  uint64_t end = 0;
  for (const auto& [off, e] : entries_) {
    end = std::max(end, e.offset + e.length);
  }
  return end;
}

Buffer ChunkMap::encode() const {
  Encoder e;
  e.put_u32(static_cast<uint32_t>(entries_.size()));
  for (const auto& [off, ent] : entries_) {
    e.put_bytes(encode_entry(ent));
  }
  return e.finish();
}

std::string ChunkMap::omap_key(uint64_t offset) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%s%016llx", kChunkEntryPrefix,
                static_cast<unsigned long long>(offset));
  return buf;
}

Buffer ChunkMap::encode_entry(const ChunkMapEntry& ent) {
  Encoder ee;
  ee.put_u64(ent.offset);
  ee.put_u32(ent.length);
  ee.put_u8(static_cast<uint8_t>((ent.cached ? 1 : 0) | (ent.dirty ? 2 : 0) |
                                 (ent.container ? 4 : 0)));
  ee.put_string(ent.chunk_id);
  // Trailing container offset: encodes as zeros for ordinary chunks, which
  // is byte-identical to the fixed-footprint padding below — the on-disk
  // format (and the omap-bytes accounting the determinism digest folds in)
  // only changes for container members.
  ee.put_u64(ent.chunk_off);
  Buffer body = ee.finish();
  // Fixed per-entry footprint (the paper's 150 bytes per chunk entry).
  Buffer padded(kEntryEncodedBytes);
  std::memcpy(padded.mutable_data(), body.data(),
              std::min(body.size(), padded.size()));
  return padded;
}

Result<ChunkMapEntry> ChunkMap::decode_entry(const Buffer& b) {
  Decoder ed(b);
  ChunkMapEntry ent;
  uint8_t flags = 0;
  if (auto s = ed.get_u64(&ent.offset); !s.is_ok()) return s;
  if (auto s = ed.get_u32(&ent.length); !s.is_ok()) return s;
  if (auto s = ed.get_u8(&flags); !s.is_ok()) return s;
  if (auto s = ed.get_string(&ent.chunk_id); !s.is_ok()) return s;
  // Container offset rides after the chunk id; entries written before the
  // field existed (or handed to tests unpadded) decode it as absent = 0.
  if (auto s = ed.get_u64(&ent.chunk_off); !s.is_ok()) ent.chunk_off = 0;
  ent.cached = (flags & 1) != 0;
  ent.dirty = (flags & 2) != 0;
  ent.container = (flags & 4) != 0;
  return ent;
}

Result<ChunkMap> load_chunk_map(const ObjectStore& store,
                                const ObjectKey& key) {
  ChunkMap cm;
  for (const auto& [k, v] : store.omap_list(key, kChunkEntryPrefix)) {
    auto ent = ChunkMap::decode_entry(v);
    if (!ent.is_ok()) return ent.status();
    ChunkMapEntry e = std::move(ent).value();
    const uint64_t off = e.offset;
    cm.entries()[off] = std::move(e);
  }
  return cm;
}

Result<ChunkMap> ChunkMap::decode(const Buffer& b) {
  ChunkMap cm;
  Decoder d(b);
  uint32_t n = 0;
  if (auto s = d.get_u32(&n); !s.is_ok()) return s;
  for (uint32_t i = 0; i < n; i++) {
    Buffer padded;
    if (auto s = d.get_bytes(&padded); !s.is_ok()) return s;
    auto ent = decode_entry(padded);
    if (!ent.is_ok()) return ent.status();
    ChunkMapEntry e = std::move(ent).value();
    cm.entries_[e.offset] = std::move(e);
  }
  return cm;
}

}  // namespace gdedup
