#include "dedup/tier.h"

#include <algorithm>
#include <cassert>

#include "common/logging.h"
#include "dedup/recipe.h"
#include "hash/fingerprint.h"
#include "hash/weak_hash.h"
#include "osd/messages.h"

namespace gdedup {

namespace {

// Gather helper for multi-part async assembly (reads / pre-reads).
struct Gather {
  std::vector<Buffer> parts;
  int outstanding = 0;
  Status worst;
  std::function<void(Status)> done;

  void arrive(size_t idx, Result<Buffer> r) {
    if (r.is_ok()) {
      if (idx < parts.size()) parts[idx] = std::move(r).value();
    } else if (worst.is_ok()) {
      worst = r.status();
    }
    if (--outstanding == 0) {
      // Move out before invoking: `done` routinely captures the Gather's
      // own shared_ptr (via a locked weak ref), and leaving it stored
      // would keep the parts alive past completion.
      auto fn = std::move(done);
      done = nullptr;
      fn(worst);
    }
  }
};

}  // namespace

DedupTier::DedupTier(Osd* osd, PoolId pool)
    : osd_(osd),
      pool_(pool),
      chunker_(osd->ctx().osdmap().pool(pool).dedup.chunk_size),
      hitset_(osd->ctx().osdmap().pool(pool).dedup.hitset_period,
              osd->ctx().osdmap().pool(pool).dedup.hitset_count,
              osd->ctx().osdmap().pool(pool).dedup.hitcount_threshold),
      rate_(osd->ctx().osdmap().pool(pool).dedup) {
  obs::PerfCountersBuilder b("tier.osd" + std::to_string(osd->id()) + ".pool" +
                                 std::to_string(pool),
                             l_tier_first, l_tier_last);
  b.add_counter(l_tier_writes, "writes");
  b.add_counter(l_tier_reads, "reads");
  b.add_counter(l_tier_removes, "removes");
  b.add_counter(l_tier_prereads, "prereads");
  b.add_counter(l_tier_flush_merges, "flush_merges");
  b.add_counter(l_tier_cached_read_chunks, "cached_read_chunks");
  b.add_counter(l_tier_redirected_read_chunks, "redirected_read_chunks");
  b.add_counter(l_tier_chunks_flushed, "chunks_flushed");
  b.add_counter(l_tier_flush_bytes, "flush_bytes");
  b.add_counter(l_tier_noop_flushes, "noop_flushes");
  b.add_counter(l_tier_derefs, "derefs");
  b.add_counter(l_tier_evictions, "evictions");
  b.add_counter(l_tier_capacity_evictions, "capacity_evictions");
  b.add_counter(l_tier_promotions, "promotions");
  b.add_counter(l_tier_hot_skips, "hot_skips");
  b.add_counter(l_tier_racy_flushes, "racy_flushes");
  b.add_counter(l_tier_degraded_pulls, "degraded_pulls");
  b.add_counter(l_tier_orphan_adoptions, "orphan_adoptions");
  b.add_counter(l_tier_engine_ticks, "engine_ticks");
  b.add_counter(l_tier_engine_aborts, "engine_aborts");
  b.add_counter(l_tier_fingerprint_cache_hits, "fingerprint_cache_hits");
  b.add_counter(l_tier_weak_hash_hits, "weak_hash_hits");
  b.add_counter(l_tier_weak_hash_misses, "weak_hash_misses");
  b.add_counter(l_tier_weak_collisions, "weak_collisions");
  b.add_counter(l_tier_bloom_negative_hits, "bloom_negative_hits");
  b.add_counter(l_tier_sha_computed, "sha_computed");
  b.add_counter(l_tier_sha_avoided, "sha_avoided");
  b.add_counter(l_tier_read_logical_bytes, "read_logical_bytes");
  b.add_counter(l_tier_read_chunk_objects, "read_chunk_objects");
  b.add_counter(l_tier_read_chunk_rpcs, "read_chunk_rpcs");
  b.add_counter(l_tier_asm_window_opens, "asm_window_opens");
  b.add_counter(l_tier_asm_hits, "asm_hits");
  b.add_counter(l_tier_asm_prefetched_refs, "asm_prefetched_refs");
  b.add_counter(l_tier_asm_wasted_refs, "asm_wasted_refs");
  b.add_counter(l_tier_rewrite_runs, "rewrite_runs");
  b.add_counter(l_tier_rewrite_chunks, "rewrite_chunks");
  b.add_counter(l_tier_rewrite_bytes, "rewrite_bytes");
  b.add_counter(l_tier_recipe_chunks, "recipe_chunks");
  b.add_counter(l_tier_recipe_hits, "recipe_hits");
  b.add_counter(l_tier_meta_txns, "meta_txns");
  b.add_counter(l_tier_meta_bytes_baseline, "meta_bytes_baseline");
  b.add_counter(l_tier_meta_bytes_actual, "meta_bytes_actual");
  b.add_gauge(l_tier_backlog, "backlog");
  b.add_gauge(l_tier_backlog_derefs, "backlog_derefs");
  b.add_gauge(l_tier_rate_credits_x1000, "rate_credits_x1000");
  b.add_gauge(l_tier_rate_demand, "rate_demand");
  b.add_gauge(l_tier_rate_regime, "rate_regime");
  b.add_gauge(l_tier_recipe_inline_tail, "recipe_inline_tail");
  b.add_gauge(l_tier_bloom_rebuilds, "bloom_rebuilds");
  b.add_gauge(l_tier_bloom_rebuild_ns, "bloom_rebuild_ns");
  b.add_histogram(l_tier_write_lat, "write_lat");
  b.add_histogram(l_tier_read_lat, "read_lat");
  b.add_histogram(l_tier_fingerprint_lat, "fingerprint_lat");
  b.add_histogram(l_tier_chunk_put_lat, "chunk_put_lat");
  b.add_histogram(l_tier_chunk_deref_lat, "chunk_deref_lat");
  b.add_histogram(l_tier_merge_read_lat, "merge_read_lat");
  b.add_histogram(l_tier_flush_lat, "flush_lat");
  b.add_histogram(l_tier_read_gap, "read_gap");
  perf_ = b.create();
  if (auto* reg = osd_->ctx().perf_registry()) reg->add(perf_);
}

void DedupTier::refresh_stats_view() const {
  stats_view_.writes = perf_->get(l_tier_writes);
  stats_view_.reads = perf_->get(l_tier_reads);
  stats_view_.removes = perf_->get(l_tier_removes);
  stats_view_.prereads = perf_->get(l_tier_prereads);
  stats_view_.flush_merges = perf_->get(l_tier_flush_merges);
  stats_view_.cached_read_chunks = perf_->get(l_tier_cached_read_chunks);
  stats_view_.redirected_read_chunks =
      perf_->get(l_tier_redirected_read_chunks);
  stats_view_.chunks_flushed = perf_->get(l_tier_chunks_flushed);
  stats_view_.flush_bytes = perf_->get(l_tier_flush_bytes);
  stats_view_.noop_flushes = perf_->get(l_tier_noop_flushes);
  stats_view_.derefs = perf_->get(l_tier_derefs);
  stats_view_.evictions = perf_->get(l_tier_evictions);
  stats_view_.capacity_evictions = perf_->get(l_tier_capacity_evictions);
  stats_view_.promotions = perf_->get(l_tier_promotions);
  stats_view_.hot_skips = perf_->get(l_tier_hot_skips);
  stats_view_.racy_flushes = perf_->get(l_tier_racy_flushes);
  stats_view_.degraded_pulls = perf_->get(l_tier_degraded_pulls);
  stats_view_.orphan_adoptions = perf_->get(l_tier_orphan_adoptions);
  stats_view_.engine_ticks = perf_->get(l_tier_engine_ticks);
  stats_view_.engine_aborts = perf_->get(l_tier_engine_aborts);
  stats_view_.fingerprint_cache_hits =
      perf_->get(l_tier_fingerprint_cache_hits);
  stats_view_.weak_hash_hits = perf_->get(l_tier_weak_hash_hits);
  stats_view_.weak_hash_misses = perf_->get(l_tier_weak_hash_misses);
  stats_view_.weak_collisions = perf_->get(l_tier_weak_collisions);
  stats_view_.bloom_negative_hits = perf_->get(l_tier_bloom_negative_hits);
  stats_view_.sha_computed = perf_->get(l_tier_sha_computed);
  stats_view_.sha_avoided = perf_->get(l_tier_sha_avoided);
  stats_view_.read_logical_bytes = perf_->get(l_tier_read_logical_bytes);
  stats_view_.read_chunk_objects = perf_->get(l_tier_read_chunk_objects);
  stats_view_.read_chunk_rpcs = perf_->get(l_tier_read_chunk_rpcs);
  stats_view_.asm_window_opens = perf_->get(l_tier_asm_window_opens);
  stats_view_.asm_hits = perf_->get(l_tier_asm_hits);
  stats_view_.asm_prefetched_refs = perf_->get(l_tier_asm_prefetched_refs);
  stats_view_.asm_wasted_refs = perf_->get(l_tier_asm_wasted_refs);
  stats_view_.rewrite_runs = perf_->get(l_tier_rewrite_runs);
  stats_view_.rewrite_chunks = perf_->get(l_tier_rewrite_chunks);
  stats_view_.rewrite_bytes = perf_->get(l_tier_rewrite_bytes);
  stats_view_.recipe_chunks = perf_->get(l_tier_recipe_chunks);
  stats_view_.recipe_hits = perf_->get(l_tier_recipe_hits);
  stats_view_.meta_txns = perf_->get(l_tier_meta_txns);
  stats_view_.meta_bytes_baseline = perf_->get(l_tier_meta_bytes_baseline);
  stats_view_.meta_bytes_actual = perf_->get(l_tier_meta_bytes_actual);
}

void DedupTier::sync_telemetry_gauges() {
  perf_->set_gauge(l_tier_backlog, static_cast<int64_t>(dirty_backlog()));
  perf_->set_gauge(l_tier_backlog_derefs,
                   static_cast<int64_t>(pending_derefs_.size()));
  perf_->set_gauge(l_tier_rate_credits_x1000,
                   static_cast<int64_t>(rate_.credits() * 1000.0));
  const SimTime now = sched().now();
  perf_->set_gauge(l_tier_rate_demand,
                   static_cast<int64_t>(rate_.current_demand(now)));
  perf_->set_gauge(l_tier_rate_regime, rate_.regime(now));
  // Inline tail: loaded map entries whose on-disk form is still an inline
  // omap record (not yet absorbed into a recipe chunk).  Pure cache scan.
  int64_t tail = 0;
  for (const auto& [oid, cm] : map_cache_) {
    for (const auto& [off, e] : cm.entries()) {
      if (e.inline_rec) tail++;
    }
  }
  perf_->set_gauge(l_tier_recipe_inline_tail, tail);
  // Bloom-rebuild visibility for the node-shared fingerprint index; every
  // tier of the node mirrors the same totals (aggregate with max).
  if (FingerprintIndex* idx = fp_index()) {
    perf_->set_gauge(l_tier_bloom_rebuilds,
                     static_cast<int64_t>(idx->stats().bloom_rebuilds));
    perf_->set_gauge(l_tier_bloom_rebuild_ns,
                     static_cast<int64_t>(idx->bloom_rebuild_cost_ns()));
  }
}

// --------------------------------------------------------- object context

ChunkMap& DedupTier::cached_map(const std::string& oid) {
  auto it = map_cache_.find(oid);
  if (it != map_cache_.end()) return it->second;
  const ObjectKey key{pool_, oid};
  const ObjectStore* st = osd_->store_if_exists(pool_);
  if ((st == nullptr || st->find(key) == nullptr) &&
      osd_->ctx().osdmap().primary(pool_, oid) == osd_->id()) {
    // Degraded object: this OSD became primary (a crash rotated the acting
    // set) before recovery delivered its copy.  Building the object
    // context from nothing would misclassify the next write — a partial
    // write over an evicted chunk would look like a write to a brand-new
    // object, be marked cached, and the next flush would replace the
    // flushed chunk with zero-padded local bytes.  Do what Ceph does for a
    // degraded object: recover it before serving ops, here by pulling the
    // freshest copy any up peer holds into the local store.
    const ObjectState* best = nullptr;
    for (OsdId pid : osd_->ctx().osdmap().all_osds()) {
      if (pid == osd_->id()) continue;
      Osd* peer = osd_->ctx().osd(pid);
      if (peer == nullptr || !peer->is_up()) continue;
      const ObjectStore* ps = peer->store_if_exists(pool_);
      const ObjectState* os = ps != nullptr ? ps->find(key) : nullptr;
      if (os != nullptr && (best == nullptr || os->version > best->version)) {
        best = os;
      }
    }
    if (best != nullptr) {
      osd_->store(pool_).install(key, *best);
      perf_->inc(l_tier_degraded_pulls);
      st = osd_->store_if_exists(pool_);
    }
  }
  ChunkMap cm;
  if (st != nullptr) {
    // The resolved loader is a strict superset of load_chunk_map: with no
    // recipe records on disk (default mode) it reads the same omap and
    // yields the same map, and the meta-read accounting is host-side.
    uint64_t meta_read = 0;
    auto loaded = load_chunk_map_resolved(&osd_->ctx(), *st, key, &meta_read);
    if (loaded.is_ok()) {
      cm = std::move(loaded).value();
      osd_->perf().inc(l_osd_meta_bytes_read, meta_read);
    } else {
      LOG_ERROR("corrupt chunk map on %s: %s", oid.c_str(),
                loaded.status().to_string().c_str());
    }
  }
  return map_cache_.emplace(oid, std::move(cm)).first->second;
}

void DedupTier::overlay_local(const std::string& oid, uint64_t off,
                              Buffer* buf) const {
  const ObjectStore* st = osd_->store_if_exists(pool_);
  if (st == nullptr) return;
  const ObjectState* os = st->find({pool_, oid});
  if (os == nullptr) return;
  const uint64_t end = off + buf->size();
  const auto& exts = os->data.extents();
  auto it = exts.lower_bound(off);
  if (it != exts.begin()) {
    auto prev = std::prev(it);
    if (prev->first + prev->second.size() > off) it = prev;
  }
  for (; it != exts.end() && it->first < end; ++it) {
    const uint64_t b = std::max(off, it->first);
    const uint64_t e = std::min(end, it->first + it->second.size());
    if (b >= e) continue;
    std::memcpy(buf->mutable_data() + (b - off),
                it->second.data() + (b - it->first), e - b);
  }
}

const ChunkMap* DedupTier::cached_map_if_loaded(const std::string& oid) const {
  auto it = map_cache_.find(oid);
  return it == map_cache_.end() ? nullptr : &it->second;
}

uint64_t DedupTier::logical_size(const std::string& oid) const {
  const ObjectStore* st = osd_->store_if_exists(pool_);
  if (st == nullptr) return 0;
  auto v = st->size({pool_, oid});
  return v.is_ok() ? v.value() : 0;
}

void DedupTier::mark_dirty(const std::string& oid) {
  if (inflight_oids_.count(oid)) return;  // will requeue after its flush
  if (dirty_set_.insert(oid).second) dirty_list_.push_back(oid);
}

bool DedupTier::fail_at(FailurePoint p, const std::string& oid) {
  if (failure_hook_ && failure_hook_(p, oid)) {
    perf_->inc(l_tier_engine_aborts);
    return true;
  }
  return false;
}

void DedupTier::rebuild_dirty_list() {
  // A restart loses the volatile context; the persisted chunk maps inside
  // the self-contained objects are the source of truth.  Everything
  // volatile goes: in-flight flush markers, queued derefs and promotions,
  // unapplied-write counters — callbacks from ops that were in flight at
  // crash time may still land afterwards and must not resurrect state (the
  // pending-writes decrement below is find()-based for the same reason).
  dirty_list_.clear();
  dirty_set_.clear();
  map_cache_.clear();
  inflight_oids_.clear();
  pending_derefs_.clear();
  pending_writes_.clear();
  promote_queue_.clear();
  promote_set_.clear();
  asm_windows_.clear();
  rewrite_queue_.clear();
  rewrite_set_.clear();
  meta_batches_.clear();
  bump_map_stamp();
  in_tick_ = false;
  const ObjectStore* st = osd_->store_if_exists(pool_);
  if (st == nullptr) return;
  for (const auto& key : st->list(pool_)) {
    // Dirty entries always have inline omap records (every mutation path
    // writes an inline shadow), so the plain loader sees all of them
    // without fetching recipe chunks.
    auto cm = load_chunk_map(*st, key);
    if (cm.is_ok() && cm.value().any_dirty()) mark_dirty(key.oid);
  }
}

// ------------------------------------------------- recipe metadata layer
//
// In recipe mode (ClusterConfig.recipe_dedup / GDEDUP_RECIPE_DEDUP) the
// per-slot chunk-map records of an object are compacted into fixed
// offset-aligned windows of `recipe_entries` slots.  Each fully-flushed
// window serializes to a content-addressed "recipe chunk" stored through
// the ordinary chunk-pool put path, so identical recipes across objects —
// e.g. the same backup image written by many tenants — deduplicate exactly
// like data chunks do.  The object's omap keeps one ~60-byte RecipeRecord
// per window plus an inline tail of recently mutated entries; inline
// records always overlay recipe members, so absorbing a window never has
// to be undone to mutate a single slot.  All metadata mutations of one
// flush cycle coalesce into one buffered transaction (MetaBatch), applied
// once per object per cycle, with chunk derefs released strictly after it
// (Figure 9's deref-last ordering survives the batching).

Buffer DedupTier::encode_entry_record(const ChunkMapEntry& e) const {
  return recipe_on() ? ChunkMap::encode_entry_packed(e)
                     : ChunkMap::encode_entry(e);
}

void DedupTier::account_meta_entry_write(size_t key_bytes,
                                         size_t value_bytes) {
  const uint64_t actual = key_bytes + value_bytes;
  osd_->perf().inc(l_osd_meta_bytes_written, actual);
  perf_->inc(l_tier_meta_bytes_actual, actual);
  perf_->inc(l_tier_meta_bytes_baseline,
             key_bytes + ChunkMap::kEntryEncodedBytes);
}

void DedupTier::put_entry_record(Transaction* txn, const ObjectKey& key,
                                 ChunkMapEntry* e) {
  const std::string k = ChunkMap::omap_key(e->offset);
  Buffer v;
  if (recipe_on() && e->dirty && e->cached && e->flushed()) {
    // A fully-cached dirty slot re-derives everything from its local bytes
    // on redo; the superseded chunk id is only consulted by the in-memory
    // deref, whose snapshot keeps it.  Persist the slot id-less (a packed
    // dirty record is ~8 bytes, not ~41).  If a crash does lose the deref,
    // the old ref is a dangling false positive the GC sweep already
    // handles — the same window as a crash after the chunk put.
    ChunkMapEntry stripped = *e;
    stripped.chunk_id.clear();
    stripped.chunk_off = 0;
    stripped.container = false;
    v = encode_entry_record(stripped);
  } else {
    v = encode_entry_record(*e);
  }
  account_meta_entry_write(k.size(), v.size());
  e->inline_rec = true;
  txn->omap_set(key, k, std::move(v));
}

void DedupTier::queue_deferred_deref(const std::string& oid,
                                     const std::string& chunk_id,
                                     const ChunkRef& ref) {
  if (MetaBatch* b = meta_batch(oid)) {
    b->derefs.push_back({chunk_id, ref});
  } else {
    pending_derefs_.push_back({chunk_id, ref});
  }
}

void DedupTier::break_recipes(const std::string& oid, ChunkMap* cm,
                              Transaction* txn) {
  const ObjectKey key{pool_, oid};
  for (const auto& [base, rec] : cm->recipes()) {
    const std::string rk = RecipeRecord::omap_key(base);
    osd_->perf().inc(l_osd_meta_bytes_written, rk.size());
    perf_->inc(l_tier_meta_bytes_actual, rk.size());
    txn->omap_rm(key, rk);
    queue_deferred_deref(oid, rec.chunk_id,
                         ChunkRef{pool_, oid, kRecipeRefBit | base});
  }
  cm->recipes().clear();
}

void DedupTier::persist_pending_slots(const std::string& oid,
                                      const std::vector<uint64_t>& members) {
  MetaBatch* b = meta_batch(oid);
  if (b == nullptr) return;
  auto it = map_cache_.find(oid);
  const ObjectKey key{pool_, oid};
  for (uint64_t off : members) {
    if (b->pending.erase(off) == 0) continue;
    if (it == map_cache_.end()) continue;  // context dropped; record is moot
    ChunkMapEntry* e = it->second.find(off);
    if (e != nullptr) put_entry_record(&b->txn, key, e);
  }
}

void DedupTier::compact_recipes(const std::string& oid,
                                std::function<void()> done) {
  MetaBatch* b = meta_batch(oid);
  if (b == nullptr || !osd_->local_exists(pool_, oid)) {
    sched().after(0, std::move(done));
    return;
  }
  const ObjectKey key{pool_, oid};
  const uint64_t span = recipe_window_span();
  const int want =
      std::max(1, (cfg().recipe_entries > 0 ? cfg().recipe_entries : 32) / 2);

  // Fixed offset-aligned windows in ascending order (std::map iteration),
  // snapshotted up front: the walk below is asynchronous and re-validates
  // every member when it acts.
  struct Window {
    uint64_t base = 0;
    std::vector<uint64_t> members;
  };
  auto wins = std::make_shared<std::vector<Window>>();
  {
    ChunkMap& cm = cached_map(oid);
    for (const auto& [off, e] : cm.entries()) {
      const uint64_t base = off / span * span;
      if (wins->empty() || wins->back().base != base) {
        wins->push_back({base, {}});
      }
      wins->back().members.push_back(off);
    }
  }

  auto idx = std::make_shared<size_t>(0);
  auto done_sp = std::make_shared<std::function<void()>>(std::move(done));
  auto step = std::make_shared<std::function<void()>>();
  // Weak self-reference: see post_process_write's `proceed`.
  std::weak_ptr<std::function<void()>> step_weak = step;
  *step = [this, oid, key, wins, idx, want, step_weak, done_sp]() {
    auto self = step_weak.lock();
    if (!self) return;
    // Re-resolve the batch each step: meta_batches_ may rehash while this
    // walk is parked in a fingerprint or chunk put.
    if (meta_batch(oid) == nullptr || *idx >= wins->size() ||
        !osd_->local_exists(pool_, oid)) {
      (*done_sp)();
      return;
    }
    const Window& w = (*wins)[(*idx)++];
    MetaBatch* b = meta_batch(oid);
    ChunkMap& cm = cached_map(oid);

    // Eligibility: >= 2 members, all flushed, clean and evicted — the
    // canonical state whose packed form is identical across objects
    // holding the same content (cached/dirty flags and dirty_gen never
    // leak into a recipe payload).
    std::vector<ChunkMapEntry> canon;
    canon.reserve(w.members.size());
    bool eligible = w.members.size() >= 2;
    int shadows = 0;  // members inline on disk or pending this cycle
    for (uint64_t off : w.members) {
      ChunkMapEntry* e = cm.find(off);
      if (e == nullptr) {
        eligible = false;
        continue;
      }
      if (e->inline_rec || b->pending.count(off) > 0) shadows++;
      if (!e->flushed() || e->dirty || e->cached) {
        eligible = false;
        continue;
      }
      ChunkMapEntry c = *e;
      c.dirty_gen = 0;
      c.inline_rec = false;
      canon.push_back(std::move(c));
    }
    if (!eligible) {
      // Hot/partial window: stays (or goes back) inline.
      persist_pending_slots(oid, w.members);
      (*self)();
      return;
    }
    if (shadows == 0) {
      // Fully absorbed and untouched since — nothing to recompute.
      (*self)();
      return;
    }

    Buffer payload = encode_recipe_chunk(canon);
    const size_t payload_bytes = payload.size();
    fingerprint_async(
        payload,
        [this, oid, key, base = w.base, members = w.members,
         canon = std::move(canon), payload, payload_bytes, shadows, want,
         self, done_sp](const Fingerprint& fp) mutable {
          MetaBatch* b = meta_batch(oid);
          auto mit = map_cache_.find(oid);
          if (b == nullptr) {
            (*done_sp)();
            return;
          }
          if (mit == map_cache_.end() || !osd_->local_exists(pool_, oid)) {
            (*self)();
            return;
          }
          ChunkMap& cm = mit->second;
          const std::string rid = fp.hex();
          auto account_rm = [this](const std::string& k) {
            osd_->perf().inc(l_osd_meta_bytes_written, k.size());
            perf_->inc(l_tier_meta_bytes_actual, k.size());
          };
          auto member_matches = [&cm](const ChunkMapEntry& c) {
            const ChunkMapEntry* e = cm.find(c.offset);
            return e != nullptr && !e->dirty && !e->cached &&
                   e->chunk_id == c.chunk_id && e->chunk_off == c.chunk_off &&
                   e->length == c.length && e->container == c.container;
          };

          auto rit = cm.recipes().find(base);
          if (rit != cm.recipes().end() && rit->second.chunk_id == rid) {
            // The recipe already holds exactly this content; the inline
            // shadows are redundant copies — drop them.
            for (const ChunkMapEntry& c : canon) {
              ChunkMapEntry* e = cm.find(c.offset);
              if (e == nullptr || !member_matches(c)) continue;
              b->pending.erase(c.offset);
              if (e->inline_rec) {
                const std::string k = ChunkMap::omap_key(c.offset);
                account_rm(k);
                b->txn.omap_rm(key, k);
                e->inline_rec = false;
              }
            }
            (*self)();
            return;
          }
          if (rit != cm.recipes().end() && shadows < want) {
            // Hysteresis: a lightly diverged window is cheaper served by
            // its inline overlay than by rewriting the recipe chunk every
            // cycle.  Rebuild once at least half the window has shadows.
            persist_pending_slots(oid, members);
            (*self)();
            return;
          }

          // Absorb or rebuild: content-address the packed window and put
          // it through the ordinary chunk-pool path — identical windows
          // across objects and tenants deduplicate here.
          const PoolId cp = cfg().chunk_pool;
          const bool hit = peek_chunk_exists(&osd_->ctx(), cp, rid);
          const ChunkRef rref{pool_, oid, kRecipeRefBit | base};
          send_chunk_put(
              rid, payload, rref, /*foreground=*/false,
              [this, oid, key, base, members, canon = std::move(canon), rid,
               cp, hit, payload_bytes, rref, self, done_sp,
               account_rm](Status s) mutable {
                MetaBatch* b = meta_batch(oid);
                auto mit = map_cache_.find(oid);
                if (b == nullptr) {
                  if (s.is_ok()) {
                    pending_derefs_.push_back({rid, rref});
                  }
                  (*done_sp)();
                  return;
                }
                if (!s.is_ok() || mit == map_cache_.end() ||
                    !osd_->local_exists(pool_, oid)) {
                  if (s.is_ok()) queue_deferred_deref(oid, rid, rref);
                  persist_pending_slots(oid, members);
                  (*self)();
                  return;
                }
                ChunkMap& cm = mit->second;
                // A foreground write may have raced the put; install the
                // record only if every member still matches the snapshot
                // (diverged members would be masked by inline overlay, but
                // a fully re-validated install keeps record and map in
                // lockstep).
                bool all_match = true;
                for (const ChunkMapEntry& c : canon) {
                  const ChunkMapEntry* e = cm.find(c.offset);
                  if (e == nullptr || e->dirty || e->cached ||
                      e->chunk_id != c.chunk_id ||
                      e->chunk_off != c.chunk_off || e->length != c.length ||
                      e->container != c.container) {
                    all_match = false;
                    break;
                  }
                }
                if (!all_match) {
                  queue_deferred_deref(oid, rid, rref);
                  persist_pending_slots(oid, members);
                  (*self)();
                  return;
                }
                perf_->inc(hit ? l_tier_recipe_hits : l_tier_recipe_chunks);
                if (!hit) {
                  // The payload only costs write bytes when the chunk is
                  // new; a hit is the metadata dedup paying off.
                  osd_->perf().inc(l_osd_meta_bytes_written, payload_bytes);
                  perf_->inc(l_tier_meta_bytes_actual, payload_bytes);
                }
                RecipeRecord nr;
                nr.base = base;
                nr.count = static_cast<uint32_t>(canon.size());
                nr.chunk_pool = cp;
                nr.chunk_id = rid;
                const std::string rk = RecipeRecord::omap_key(base);
                Buffer rv = nr.encode();
                osd_->perf().inc(l_osd_meta_bytes_written,
                                 rk.size() + rv.size());
                perf_->inc(l_tier_meta_bytes_actual, rk.size() + rv.size());
                b->txn.omap_set(key, rk, std::move(rv));
                auto rit = cm.recipes().find(base);
                if (rit != cm.recipes().end() &&
                    rit->second.chunk_id != rid) {
                  queue_deferred_deref(
                      oid, rit->second.chunk_id,
                      ChunkRef{pool_, oid, kRecipeRefBit | base});
                }
                cm.recipes()[base] = std::move(nr);
                for (const ChunkMapEntry& c : canon) {
                  b->pending.erase(c.offset);
                  ChunkMapEntry* e = cm.find(c.offset);
                  if (e != nullptr && e->inline_rec) {
                    const std::string k = ChunkMap::omap_key(c.offset);
                    account_rm(k);
                    b->txn.omap_rm(key, k);
                    e->inline_rec = false;
                  }
                }
                (*self)();
              });
        });
  };
  (*step)();
}

void DedupTier::apply_meta_batch(const std::string& oid, bool any_dirty,
                                 std::function<void(bool)> done) {
  auto it = meta_batches_.find(oid);
  if (it == meta_batches_.end()) {
    sched().after(0, [any_dirty, done = std::move(done)] { done(any_dirty); });
    return;
  }
  if (!it->second.pending.empty() && osd_->local_exists(pool_, oid)) {
    // Safety net for slots no compaction path persisted (the walk was cut
    // short): their clean state must still reach disk.
    const std::vector<uint64_t> rest(it->second.pending.begin(),
                                     it->second.pending.end());
    persist_pending_slots(oid, rest);
  }
  if (!it->second.evicts.empty() && osd_->local_exists(pool_, oid)) {
    // Materialize the deferred data-part evictions, re-validated against
    // the live map: a foreground write that re-dirtied a slot since its
    // flush decided to evict holds the only copy of its bytes — punching
    // it now would destroy them, so its eviction is simply dropped (the
    // next flush decides again).
    auto mit = map_cache_.find(oid);
    if (mit != map_cache_.end()) {
      ChunkMap& cm = mit->second;
      const ObjectKey key{pool_, oid};
      bool punched = false;
      for (uint64_t off : it->second.evicts) {
        const ChunkMapEntry* e = cm.find(off);
        if (e == nullptr || e->dirty || e->cached || !e->flushed()) continue;
        it->second.txn.punch_hole(key, off, e->length);
        punched = true;
      }
      if (punched) {
        bool any_local = false;
        for (const auto& [eoff, ent] : cm.entries()) {
          if (ent.cached || ent.dirty) {
            any_local = true;
            break;
          }
        }
        if (!any_local) it->second.txn.truncate(key, 0);
      }
    }
  }
  MetaBatch batch = std::move(it->second);
  meta_batches_.erase(it);
  auto derefs = std::make_shared<std::vector<std::pair<std::string, ChunkRef>>>(
      std::move(batch.derefs));
  auto release = [this, derefs] {
    // Deref-last: the queued releases only run once the batched map apply
    // is durable (or moot, for a removed object whose refs the chunks
    // still hold until GC or the queued deref lands).
    for (auto& d : *derefs) pending_derefs_.push_back(std::move(d));
  };
  if (batch.txn.empty() || !osd_->local_exists(pool_, oid)) {
    sched().after(0, [release = std::move(release), any_dirty,
                      done = std::move(done)]() mutable {
      release();
      done(any_dirty);
    });
    return;
  }
  perf_->inc(l_tier_meta_txns);
  osd_->submit_write(pool_, oid, std::move(batch.txn),
                     [release = std::move(release), any_dirty,
                      done = std::move(done)](Status) mutable {
                       release();
                       done(any_dirty);
                     },
                     /*foreground=*/false);
}

// ------------------------------------------------------- chunk-pool I/O

void DedupTier::read_chunk_from_pool(const std::string& chunk_oid,
                                     uint64_t off, uint64_t len,
                                     bool foreground,
                                     std::function<void(Result<Buffer>)> done,
                                     obs::OpTraceRef trace) {
  const PoolId cp = cfg().chunk_pool;
  const OsdId primary = osd_->ctx().osdmap().primary(cp, chunk_oid);
  const SimTime t0 = sched().now();
  const size_t sp = trace ? trace->span_begin("chunk_pool_read", t0) : 0;
  OsdOp op;
  op.type = OsdOpType::kRead;
  op.pool = cp;
  op.oid = chunk_oid;
  op.off = off;
  op.len = len;
  op.foreground = foreground;
  send_osd_op(osd_->ctx(), osd_->node(), primary, std::move(op),
              [this, t0, trace = std::move(trace), sp,
               done = std::move(done)](OsdOpReply rep) {
                const SimTime now = sched().now();
                perf_->record(l_tier_merge_read_lat,
                              static_cast<uint64_t>(now - t0));
                if (trace) trace->span_end(sp, now);
                if (!rep.status.is_ok()) {
                  done(rep.status);
                } else {
                  done(std::move(rep.data));
                }
              });
}

std::string DedupTier::find_chunk_recording_ref(
    const std::string& oid, uint64_t offset,
    const std::string& not_this) const {
  // Only one other chunk can legitimately record this entry's ref: the one
  // a crashed flush attempt put before losing its map update.  Scan every
  // up holder so EC shards and degraded placements are both covered; the
  // walk is deterministic (ordered OSD ids, ordered stores) and only runs
  // on the rare superseded-chunk-vanished path.
  const ChunkRef want{pool_, oid, offset};
  const PoolId cp = cfg().chunk_pool;
  for (OsdId id : osd_->ctx().osdmap().all_osds()) {
    Osd* o = osd_->ctx().osd(id);
    if (o == nullptr || !o->is_up()) continue;
    const ObjectStore* st = o->store_if_exists(cp);
    if (st == nullptr) continue;
    for (const auto& key : st->list(cp)) {
      if (key.oid == not_this) continue;
      auto raw = st->getxattr(key, kRefsXattr);
      if (!raw.is_ok()) continue;
      auto dec = decode_refs(raw.value());
      if (!dec.is_ok()) continue;
      if (std::find(dec->begin(), dec->end(), want) != dec->end()) {
        return key.oid;
      }
    }
  }
  return {};
}

void DedupTier::send_chunk_put(const std::string& chunk_oid, Buffer data,
                               const ChunkRef& ref, bool foreground,
                               std::function<void(Status)> done,
                               obs::OpTraceRef trace,
                               std::vector<ChunkRef> extra_refs) {
  const PoolId cp = cfg().chunk_pool;
  const OsdId primary = osd_->ctx().osdmap().primary(cp, chunk_oid);
  const SimTime t0 = sched().now();
  const size_t sp = trace ? trace->span_begin("chunk_put", t0) : 0;
  OsdOp op;
  op.type = OsdOpType::kChunkPutRef;
  op.pool = cp;
  op.oid = chunk_oid;
  op.data = std::move(data);
  op.ref = ref;
  op.extra_refs = std::move(extra_refs);
  op.foreground = foreground;
  send_osd_op(osd_->ctx(), osd_->node(), primary, std::move(op),
              [this, t0, trace = std::move(trace), sp,
               done = std::move(done)](OsdOpReply rep) {
                const SimTime now = sched().now();
                perf_->record(l_tier_chunk_put_lat,
                              static_cast<uint64_t>(now - t0));
                if (trace) trace->span_end(sp, now);
                done(rep.status);
              });
}

void DedupTier::send_chunk_deref(const std::string& chunk_oid,
                                 const ChunkRef& ref, bool foreground,
                                 std::function<void(Status)> done,
                                 obs::OpTraceRef trace) {
  perf_->inc(l_tier_derefs);
  const PoolId cp = cfg().chunk_pool;
  const OsdId primary = osd_->ctx().osdmap().primary(cp, chunk_oid);
  const SimTime t0 = sched().now();
  const size_t sp = trace ? trace->span_begin("chunk_deref", t0) : 0;
  OsdOp op;
  op.type = OsdOpType::kChunkDeref;
  op.pool = cp;
  op.oid = chunk_oid;
  op.ref = ref;
  op.foreground = foreground;
  send_osd_op(osd_->ctx(), osd_->node(), primary, std::move(op),
              [this, t0, trace = std::move(trace), sp,
               done = std::move(done)](OsdOpReply rep) {
                const SimTime now = sched().now();
                perf_->record(l_tier_chunk_deref_lat,
                              static_cast<uint64_t>(now - t0));
                if (trace) trace->span_end(sp, now);
                done(rep.status);
              });
}

// ------------------------------------------------------------ write path

void DedupTier::handle_write(const OsdOp& op, ReplyFn reply) {
  perf_->inc(l_tier_writes);
  {
    const SimTime t0 = sched().now();
    const size_t sp = op.trace ? op.trace->span_begin("tier_write", t0) : 0;
    reply = [this, t0, sp, trace = op.trace,
             inner = std::move(reply)](OsdOpReply rep) mutable {
      const SimTime now = sched().now();
      perf_->record(l_tier_write_lat, static_cast<uint64_t>(now - t0));
      if (trace) trace->span_end(sp, now);
      inner(std::move(rep));
    };
  }
  hitset_.access(op.oid, sched().now());
  touch_cache_lru(op.oid);
  rate_.on_foreground(sched().now(), op.data.size());
  // Tiering bookkeeping (chunk-map maintenance, hitset, policy checks)
  // burns CPU on every op — the paper's Figure 10 shows the dedup path
  // roughly doubling per-op CPU.
  CpuModel& cpu = osd_->ctx().node_cpu(osd_->node());
  cpu.execute(cpu.op_fixed_cost());
  if (cfg().mode == DedupMode::kInline) {
    inline_write(op, std::move(reply));
  } else {
    post_process_write(op, std::move(reply));
  }
}

void DedupTier::post_process_write(const OsdOp& op, ReplyFn reply) {
  const std::string oid = op.oid;
  const ObjectKey key{pool_, oid};
  const uint64_t off = op.type == OsdOpType::kWriteFull ? 0 : op.off;
  const Buffer data = op.data;
  const uint64_t wlen = data.size();
  ChunkMap& cm = cached_map(oid);
  // The store's logical size understates the object once eviction dropped
  // the data part; the chunk map tracks the user-visible size.
  const uint64_t old_size = std::max(logical_size(oid), cm.logical_end());
  const uint64_t new_end = off + wlen;
  const bool full = op.type == OsdOpType::kWriteFull;
  const uint64_t new_size = full ? wlen : std::max(old_size, new_end);
  const uint32_t cs = chunker_.chunk_size();
  // Erasure-coded base pools densify extents on every re-encode, so the
  // partial-dirty overlay state cannot be reconstructed later; for them
  // the missing chunk bytes are pre-read on the foreground path (the EC
  // data path is read-modify-write anyway).
  const bool ec_base = osd_->ctx().osdmap().pool(pool_).scheme ==
                       RedundancyScheme::kErasure;

  struct Preread {
    uint64_t chunk_off;   // logical slot offset in the object
    std::string chunk_oid;
    uint32_t length;
    uint64_t src_off;     // offset of the slot inside the chunk object
  };
  std::vector<Preread> prereads;
  if (ec_base && !full) {
    for (uint64_t c : chunker_.covering(off, wlen)) {
      const ChunkMapEntry* e = cm.find(c);
      if (e == nullptr || e->cached || !e->flushed()) continue;
      const uint64_t cov_b = std::max(off, c);
      const uint64_t cov_e = std::min(new_end, c + e->length);
      if (cov_b <= c && cov_e >= c + e->length) continue;  // fully replaced
      prereads.push_back({c, e->chunk_id, e->length, e->chunk_off});
    }
  }
  auto g = std::make_shared<Gather>();
  g->parts.resize(prereads.size());
  g->outstanding = static_cast<int>(prereads.size()) + 1;  // +1 sentinel
  // Stored as g->done, so it must not hold g strongly (refcount cycle —
  // the Gather would leak its buffered parts whenever a crash abandons
  // the in-flight reads).  arrive() runs from a continuation that owns a
  // strong ref, so the lock always succeeds when the gather completes.
  std::weak_ptr<Gather> gw = g;
  auto proceed = [this, key, oid, off, data, wlen, full, new_size, new_end,
                  cs, gw, prereads, reply = std::move(reply)](Status ps) mutable {
    auto g = gw.lock();
    if (!g) return;
    if (!ps.is_ok()) {
      reply(OsdOpReply{ps, {}, 0, {}, nullptr});
      return;
    }
    ChunkMap& cm = cached_map(oid);

    Transaction txn;
    if (full) {
      // Drop map entries beyond the new end; their chunk references are
      // released by the background engine.
      std::vector<uint64_t> stale;
      for (const auto& [eoff, e] : cm.entries()) {
        if (eoff >= new_size && e.flushed()) {
          pending_derefs_.push_back({e.chunk_id, ChunkRef{pool_, oid, eoff}});
        }
        if (eoff >= new_size) stale.push_back(eoff);
      }
      for (uint64_t soff : stale) {
        cm.erase(soff);
        txn.omap_rm(key, ChunkMap::omap_key(soff));
      }
      // Every recipe of the old content is invalid now: drop the records
      // and release the recipe chunks.  Survivors below the new end are
      // re-inlined by the covering loop (write_full covers every slot).
      break_recipes(oid, &cm, &txn);
      txn.create(key);
      txn.truncate(key, new_size);
    }
    for (size_t i = 0; i < prereads.size(); i++) {
      // Install the fetched chunk if its slot still references it.
      ChunkMapEntry* e = cm.find(prereads[i].chunk_off);
      if (e != nullptr && e->chunk_id == prereads[i].chunk_oid && !e->cached) {
        txn.write(key, prereads[i].chunk_off, g->parts[i]);
        e->cached = true;
      }
    }
    txn.write(key, off, data);
    for (uint64_t c : chunker_.covering(off, wlen)) {
      const uint32_t clen = static_cast<uint32_t>(
          std::min<uint64_t>(cs, new_size > c ? new_size - c : 0));
      if (clen == 0) continue;
      ChunkMapEntry& e = cm.obtain(c, clen);
      e.length = clen;  // may shrink on write_full
      const bool fully_covered = off <= c && new_end >= c + clen;
      if (fully_covered || !e.flushed()) {
        // The data part now holds the whole chunk (holes read as zeros for
        // never-flushed chunks).
        e.cached = true;
      }
      // Otherwise this is a partial write over an evicted chunk: the data
      // part holds only the new bytes (Figure 8's cached=false, dirty=true
      // state); the background flush merges the rest from the chunk pool,
      // keeping the read-modify-write OFF the foreground path.
      e.dirty = true;
      e.dirty_gen = dirty_gen_counter_++;
      put_entry_record(&txn, key, &e);
    }

    bump_map_stamp();  // assembly plans over the old map are stale now
    mark_dirty(oid);
    perf_->inc(l_tier_meta_txns);
    pending_writes_[oid]++;
    osd_->submit_write(pool_, oid, std::move(txn),
                       [this, oid, reply = std::move(reply)](Status s) {
                         // find()-based: a crash-rebuild may have cleared
                         // the counter while this write was in flight.
                         auto it = pending_writes_.find(oid);
                         if (it != pending_writes_.end() && --it->second <= 0) {
                           pending_writes_.erase(it);
                         }
                         reply(OsdOpReply{s, {}, 0, {}, nullptr});
                       },
                       /*foreground=*/true);
  };
  g->done = std::move(proceed);
  for (size_t i = 0; i < prereads.size(); i++) {
    perf_->inc(l_tier_prereads);
    read_chunk_from_pool(prereads[i].chunk_oid, prereads[i].src_off,
                         prereads[i].length,
                         /*foreground=*/true,
                         [g, i](Result<Buffer> r) { g->arrive(i, std::move(r)); },
                         op.trace);
  }
  g->arrive(SIZE_MAX, Buffer());  // sentinel
}

void DedupTier::inline_write(const OsdOp& op, ReplyFn reply) {
  const std::string oid = op.oid;
  const ObjectKey key{pool_, oid};
  const uint64_t off = op.type == OsdOpType::kWriteFull ? 0 : op.off;
  const Buffer data = op.data;
  const uint64_t wlen = data.size();
  const uint64_t old_size =
      std::max(logical_size(oid), cached_map(oid).logical_end());
  const uint64_t new_end = off + wlen;
  const uint64_t new_size =
      op.type == OsdOpType::kWriteFull ? wlen : std::max(old_size, new_end);
  const uint32_t cs = chunker_.chunk_size();

  auto chunks =
      std::make_shared<std::vector<uint64_t>>(chunker_.covering(off, wlen));
  auto idx = std::make_shared<size_t>(0);

  // Sequential per-chunk pipeline: RMW assemble -> fingerprint -> deref old
  // -> put new -> next.  This serial, on-the-write-path processing is
  // exactly what Figure 5(a) measures.
  auto step = std::make_shared<std::function<void()>>();
  auto finish = [this, key, oid, new_size, old_size,
                 reply = std::move(reply)](Status s) {
    if (!s.is_ok()) {
      reply(OsdOpReply{s, {}, 0, {}, nullptr});
      return;
    }
    Transaction txn;
    txn.create(key);
    if (new_size != old_size) txn.truncate(key, new_size);
    ChunkMap& cm = cached_map(oid);
    for (auto& [eoff, ent] : cm.entries()) {
      put_entry_record(&txn, key, &ent);
    }
    perf_->inc(l_tier_meta_txns);
    osd_->submit_write(pool_, oid, std::move(txn),
                       [reply](Status s2) {
                         reply(OsdOpReply{s2, {}, 0, {}, nullptr});
                       },
                       /*foreground=*/true);
  };

  // The stored function holds only a weak ref to itself: a self-capturing
  // shared_ptr would be a refcount cycle, leaking every Buffer the write
  // pipeline captured.  Each invocation re-locks; the async continuations
  // below carry the strong refs, so the state lives exactly as long as
  // work is in flight.
  std::weak_ptr<std::function<void()>> step_weak = step;
  *step = [this, key, oid, off, data, wlen, new_size, cs, chunks, idx,
           step_weak, finish, trace = op.trace]() mutable {
    auto step = step_weak.lock();
    if (!step) return;  // caller holds a strong ref for every invocation
    if (*idx >= chunks->size()) {
      finish(Status::ok());
      return;
    }
    const uint64_t c = (*chunks)[(*idx)++];
    const uint32_t clen = static_cast<uint32_t>(
        std::min<uint64_t>(cs, new_size > c ? new_size - c : 0));
    if (clen == 0) {
      (*step)();
      return;
    }
    const ChunkMapEntry* e = cached_map(oid).find(c);
    const uint64_t cov_b = std::max(off, c);
    const uint64_t cov_e = std::min(off + wlen, c + static_cast<uint64_t>(clen));
    const bool fully_covered = cov_b <= c && cov_e >= c + clen;

    auto assemble = [this, c, clen, cov_b, cov_e, off, data, oid, step,
                     finish, trace](Result<Buffer> oldr) mutable {
      if (!oldr.is_ok()) {
        finish(oldr.status());
        return;
      }
      Buffer content = std::move(oldr).value();
      content.resize(clen);
      // Splice in the newly written range.
      content.write_at(cov_b - c, data.slice(cov_b - off, cov_e - cov_b));

      // Fingerprint on the foreground path: CPU is costed and the hash is
      // really computed (it becomes the chunk OID), unless the memoization
      // cache already knows this exact content.
      fingerprint_async(
          content,
          [this, c, clen, content, oid, step, finish,
           trace](const Fingerprint& fp) mutable {
            const std::string new_id = fp.hex();
            ChunkMapEntry& ent = cached_map(oid).obtain(c, clen);
            ent.length = clen;
            const std::string old_id = ent.chunk_id;
            const ChunkRef ref{pool_, oid, c};
            auto commit = [this, oid, c, clen, new_id, step](Status) {
              ChunkMapEntry& ent2 = cached_map(oid).obtain(c, clen);
              ent2.chunk_id = new_id;
              ent2.chunk_off = 0;
              ent2.container = false;
              ent2.cached = false;
              ent2.dirty = false;
              bump_map_stamp();
              (*step)();
            };
            if (old_id == new_id) {
              commit(Status::ok());
              return;
            }
            auto put = [this, new_id, content, ref, commit,
                        trace]() mutable {
              perf_->inc(l_tier_chunks_flushed);
              perf_->inc(l_tier_flush_bytes, content.size());
              send_chunk_put(new_id, std::move(content), ref,
                             /*foreground=*/true, commit, trace);
            };
            if (!old_id.empty()) {
              send_chunk_deref(old_id, ref, /*foreground=*/true,
                               [put](Status) mutable { put(); }, trace);
            } else {
              put();
            }
          },
          trace);
    };

    if (fully_covered) {
      Buffer zeros(clen);
      assemble(zeros);
    } else if (e != nullptr && e->cached) {
      osd_->submit_read(pool_, oid, c, clen, assemble, /*foreground=*/true);
    } else if (e != nullptr && e->flushed()) {
      // The Figure 5(a) read-modify-write: fetch the 32KB chunk to apply a
      // 16KB write.
      perf_->inc(l_tier_prereads);
      read_chunk_from_pool(e->chunk_id, e->chunk_off, e->length,
                           /*foreground=*/true, assemble, trace);
    } else {
      Buffer zeros(clen);
      assemble(zeros);
    }
  };
  (*step)();
}

// ------------------------------------------------------------- read path

void DedupTier::handle_read(const OsdOp& op, ReplyFn reply) {
  perf_->inc(l_tier_reads);
  {
    const SimTime t0 = sched().now();
    const size_t sp = op.trace ? op.trace->span_begin("tier_read", t0) : 0;
    reply = [this, t0, sp, trace = op.trace,
             inner = std::move(reply)](OsdOpReply rep) mutable {
      const SimTime now = sched().now();
      perf_->record(l_tier_read_lat, static_cast<uint64_t>(now - t0));
      if (trace) trace->span_end(sp, now);
      inner(std::move(rep));
    };
  }
  hitset_.access(op.oid, sched().now());
  touch_cache_lru(op.oid);
  rate_.on_foreground(sched().now(), std::max<uint64_t>(op.len, 1));
  CpuModel& cpu = osd_->ctx().node_cpu(osd_->node());
  cpu.execute(cpu.op_fixed_cost());  // tiering bookkeeping (see above)
  handle_read_attempt(op, std::move(reply), 0);
}

void DedupTier::handle_read_attempt(const OsdOp& op, ReplyFn reply,
                                    int attempt) {
  const std::string oid = op.oid;
  if (!osd_->local_exists(pool_, oid)) {
    reply(OsdOpReply{Status::not_found(oid), {}, 0, {}, nullptr});
    return;
  }
  ChunkMap& cm = cached_map(oid);
  const uint64_t size = std::max(logical_size(oid), cm.logical_end());
  const uint64_t off = op.off;
  if (off >= size) {
    reply(OsdOpReply{Status::ok(), Buffer(), 0, {}, nullptr});
    return;
  }
  const uint64_t len =
      op.len == 0 ? size - off : std::min<uint64_t>(op.len, size - off);
  perf_->inc(l_tier_read_logical_bytes, len);

  // Forward-assembly window bookkeeping (host-side only — the window
  // changes neither the RPCs issued nor any digested counter, it only
  // assembles replies into one shared buffer and serves them as
  // zero-copy slices).  Retries rebuild the map view, so only the first
  // attempt consults the window.
  AssemblyWindow* win = nullptr;
  const uint32_t cs = chunker_.chunk_size();
  if (attempt == 0 && osd_->ctx().restore_assembly()) {
    AssemblyWindow& w = asm_windows_[oid];
    if (w.streak > 0 && off == w.expect_off) {
      w.streak++;
    } else {
      close_assembly_window(&w);  // sequentiality broke
      w.streak = 1;
    }
    w.expect_off = off + len;
    if (w.open && (w.stamp != map_mutation_stamp_ || off < w.win_begin ||
                   off + len > w.win_end)) {
      close_assembly_window(&w);  // plan stale or read left the window
    }
    if (!w.open && w.streak >= kAsmStreakThreshold) {
      const uint64_t first = off / cs * cs;
      const uint64_t wend = std::min<uint64_t>(
          size, first + static_cast<uint64_t>(kAsmWindowChunks) * cs);
      if (wend > off) {
        w.open = true;
        w.stamp = map_mutation_stamp_;
        w.win_begin = off;
        w.win_end = wend;
        w.buf = std::make_shared<Buffer>(wend - off);
        w.planned = 0;
        w.consumed = 0;
        for (uint64_t c = first; c < wend; c += cs) {
          const ChunkMapEntry* ent = cm.find(c);
          if (ent != nullptr && !ent->cached && ent->flushed()) w.planned++;
        }
        perf_->inc(l_tier_asm_window_opens);
        perf_->inc(l_tier_asm_prefetched_refs, w.planned);
      }
    }
    if (w.open && w.stamp == map_mutation_stamp_ && off >= w.win_begin &&
        off + len <= w.win_end) {
      win = &w;
    }
  }
  // Completions write through the shared buffer, never through `win`:
  // the window may close (or the map rehash) while RPCs are in flight.
  std::shared_ptr<Buffer> wbuf = win != nullptr ? win->buf : nullptr;
  const uint64_t woff = win != nullptr ? win->win_begin : 0;

  // Build segments: coalesced local spans, per-chunk remote reads.
  struct Segment {
    bool remote;
    bool merge_local;  // overlay newer local extents over remote content
    uint64_t begin;
    uint64_t end;
    std::string chunk_oid;
    uint64_t chunk_off;  // offset within the chunk object
  };
  std::vector<Segment> segs;
  // Read-amplification bookkeeping: distinct chunk-pool objects touched
  // and the pg distance between consecutive remote placements (the
  // seek-locality signal restore fragmentation destroys).
  std::unordered_set<std::string> touched_chunks;
  int64_t prev_pg = -1;
  for (uint64_t c : chunker_.covering(off, len)) {
    const uint64_t b = std::max(off, c);
    const uint64_t e = std::min(off + len, c + static_cast<uint64_t>(cs));
    const ChunkMapEntry* ent = cm.find(c);
    const bool remote = ent != nullptr && !ent->cached && ent->flushed();
    if (remote) {
      perf_->inc(l_tier_redirected_read_chunks);
      if (touched_chunks.insert(ent->chunk_id).second) {
        perf_->inc(l_tier_read_chunk_objects);
      }
      const int64_t pg = static_cast<int64_t>(
          osd_->ctx().osdmap().pg_of(cfg().chunk_pool, ent->chunk_id));
      if (prev_pg >= 0) {
        perf_->record(l_tier_read_gap,
                      static_cast<uint64_t>(pg > prev_pg ? pg - prev_pg
                                                         : prev_pg - pg));
      }
      prev_pg = pg;
      if (win != nullptr) {
        perf_->inc(l_tier_asm_hits);
        win->consumed++;
      }
      const uint64_t in_obj = ent->chunk_off + (b - c);
      // Adjacent slots coalesced into one container object read back as
      // ONE batched chunk-pool RPC.  Ordinary chunks can never merge
      // here: their in-object offset restarts at 0 every slot, so the
      // contiguity test fails — with restore_rewrite off this branch is
      // digest-neutral by construction.
      if (!segs.empty() && segs.back().remote && !segs.back().merge_local &&
          !ent->dirty && segs.back().chunk_oid == ent->chunk_id &&
          segs.back().end == b &&
          segs.back().chunk_off + (segs.back().end - segs.back().begin) ==
              in_obj) {
        segs.back().end = e;
      } else {
        // A dirty non-cached chunk holds its newest bytes in local extents
        // over older chunk-pool content: fetch remote, overlay local.
        segs.push_back({true, ent->dirty, b, e, ent->chunk_id, in_obj});
      }
    } else {
      perf_->inc(l_tier_cached_read_chunks);
      if (!segs.empty() && !segs.back().remote && segs.back().end == b) {
        segs.back().end = e;  // coalesce adjacent local spans
      } else {
        segs.push_back({false, false, b, e, {}, 0});
      }
    }
  }
  for (const Segment& s : segs) {
    if (s.remote) perf_->inc(l_tier_read_chunk_rpcs);
  }

  const bool any_remote =
      std::any_of(segs.begin(), segs.end(), [](const Segment& s) { return s.remote; });

  auto g = std::make_shared<Gather>();
  g->parts.resize(segs.size());
  g->outstanding = static_cast<int>(segs.size());
  // Weak self-reference: see post_process_write's `proceed`.
  std::weak_ptr<Gather> gw = g;
  g->done = [this, gw, op, attempt, wbuf, woff, off, len,
             reply = std::move(reply)](Status s) mutable {
    auto g = gw.lock();
    if (!g) return;
    if (!s.is_ok()) {
      // A chunk may vanish mid-flush (deref of the superseded copy races
      // the redirect); the refreshed map resolves it.  Retry briefly.
      if (s.code() == Code::kNotFound && attempt < 3) {
        sched().after(msec(1), [this, op = std::move(op), attempt,
                                reply = std::move(reply)]() mutable {
          handle_read_attempt(op, std::move(reply), attempt + 1);
        });
        return;
      }
      reply(OsdOpReply{s, {}, 0, {}, nullptr});
      return;
    }
    Buffer out;
    if (wbuf) {
      // Every part of this read landed in the window buffer; the reply is
      // a zero-copy slice of it (no per-read concat allocation).
      out = wbuf->slice(off - woff, len);
    } else if (g->parts.size() == 1) {
      out = std::move(g->parts[0]);
    } else {
      size_t total = 0;
      for (const auto& p : g->parts) total += p.size();
      out.resize(total);
      size_t pos = 0;
      for (const auto& p : g->parts) {
        out.write_at(pos, p);
        pos += p.size();
      }
    }
    reply(OsdOpReply{Status::ok(), std::move(out), 0, {}, nullptr});
  };

  for (size_t i = 0; i < segs.size(); i++) {
    const Segment& s = segs[i];
    if (s.remote) {
      const bool merge = s.merge_local;
      const uint64_t b = s.begin;
      const uint64_t n = s.end - s.begin;
      read_chunk_from_pool(
          s.chunk_oid, s.chunk_off, n,
          /*foreground=*/true,
          [this, g, i, merge, oid, b, n, wbuf, woff](Result<Buffer> r) {
            if (!r.is_ok()) {
              g->arrive(i, std::move(r));
              return;
            }
            // Chunk objects can be shorter than the slot (tail chunks
            // fingerprinted before the object grew): zero-fill.
            Buffer part = std::move(r).value();
            part.resize(n);
            if (merge) overlay_local(oid, b, &part);
            if (wbuf) {
              wbuf->write_at(b - woff, part);
              g->arrive(i, Buffer());
            } else {
              g->arrive(i, std::move(part));
            }
          },
          op.trace);
    } else {
      const uint64_t b = s.begin;
      const uint64_t n = s.end - s.begin;
      osd_->submit_read(pool_, oid, b, n,
                        [g, i, b, n, wbuf, woff](Result<Buffer> r) {
                          if (!r.is_ok()) {
                            g->arrive(i, std::move(r));
                            return;
                          }
                          Buffer part = std::move(r).value();
                          if (part.size() < n) {
                            // Hole past the store's (possibly truncated)
                            // logical size: zeros by definition.
                            part.resize(n);
                          }
                          if (wbuf) {
                            wbuf->write_at(b - woff, part);
                            g->arrive(i, Buffer());
                          } else {
                            g->arrive(i, std::move(part));
                          }
                        },
                        /*foreground=*/true);
    }
  }

  // Cache manager: hot objects with redirected chunks get promoted.
  if (any_remote && cfg().cache_enabled && cfg().promote_on_read &&
      hitset_.is_hot(oid, sched().now()) && promote_set_.insert(oid).second) {
    promote_queue_.push_back(oid);
  }
}

void DedupTier::handle_remove(const OsdOp& op, ReplyFn reply) {
  perf_->inc(l_tier_removes);
  const std::string oid = op.oid;
  if (!osd_->local_exists(pool_, oid)) {
    reply(OsdOpReply{Status::not_found(oid), {}, 0, {}, nullptr});
    return;
  }
  ChunkMap& cm = cached_map(oid);
  for (const auto& [eoff, e] : cm.entries()) {
    if (e.flushed()) {
      pending_derefs_.push_back({e.chunk_id, ChunkRef{pool_, oid, eoff}});
    }
  }
  for (const auto& [base, rec] : cm.recipes()) {
    pending_derefs_.push_back(
        {rec.chunk_id, ChunkRef{pool_, oid, kRecipeRefBit | base}});
  }
  dirty_set_.erase(oid);
  drop_context(oid);
  asm_windows_.erase(oid);
  rewrite_set_.erase(oid);
  bump_map_stamp();
  osd_->submit_remove(pool_, oid, [reply = std::move(reply)](Status s) {
    reply(OsdOpReply{s, {}, 0, {}, nullptr});
  });
}

// ---------------------------------------------------------------- engine

void DedupTier::start() {
  if (running_) return;
  running_ = true;
  schedule_tick();
}

void DedupTier::stop() {
  running_ = false;
  if (tick_event_ != 0) {
    sched().cancel(tick_event_);
    tick_event_ = 0;
  }
}

void DedupTier::schedule_tick() {
  if (!running_) return;
  // start() runs from control-plane code; pin the tick chain to the
  // owning OSD's shard (re-arms from within a tick stay there anyway).
  tick_event_ = sched().after_node(osd_->node(), cfg().engine_tick,
                                   [this] { tick(); });
}

void DedupTier::kick() {
  if (!in_tick_) tick();
}

void DedupTier::tick() {
  if (in_tick_) return;
  in_tick_ = true;
  perf_->inc(l_tier_engine_ticks);
  enforce_cache_capacity();
  auto st = std::make_shared<TickState>();
  st->budget = rate_.take(sched().now(), cfg().max_dedup_per_tick);
  pump(std::move(st));
}

void DedupTier::pump(std::shared_ptr<TickState> st) {
  // Launch work until the tick budget or the parallelism window is spent.
  // The tiering agent flushes several objects concurrently, which is what
  // makes an *uncontrolled* engine genuinely hurt foreground I/O
  // (Figure 5(b)) — and what the rate controller then tames.
  while (running_ && st->budget > 0 &&
         st->inflight < cfg().engine_parallelism) {
    if (!launch_one(st)) break;
  }
  if (st->inflight == 0) {
    in_tick_ = false;
    schedule_tick();
  }
}

bool DedupTier::launch_one(const std::shared_ptr<TickState>& st) {
  auto on_done = [this, st]() {
    st->inflight--;
    pump(st);
  };

  // Deferred dereferences (from write_full shrinks / removes) first.
  if (!pending_derefs_.empty()) {
    auto [cid, ref] = pending_derefs_.front();
    pending_derefs_.pop_front();
    st->budget--;
    st->inflight++;
    send_chunk_deref(cid, ref, /*foreground=*/false,
                     [on_done](Status) { on_done(); });
    return true;
  }

  if (!promote_queue_.empty()) {
    const std::string oid = promote_queue_.front();
    promote_queue_.pop_front();
    promote_set_.erase(oid);
    st->budget--;
    st->inflight++;
    promote_object(oid, on_done);
    return true;
  }

  // Dirty list: skip vanished objects, rotate hot ones, flush the first
  // eligible object with a slice of the tick budget.
  size_t scanned = 0;
  const size_t limit = dirty_list_.size();
  while (!dirty_list_.empty() && scanned <= limit) {
    const std::string oid = dirty_list_.front();
    if (!dirty_set_.count(oid)) {
      dirty_list_.pop_front();
      continue;
    }
    if (!osd_->local_exists(pool_, oid)) {
      if (pending_writes_.count(oid)) {
        // Freshly written object whose create has not applied yet — it is
        // real, just not durable; revisit after the write lands.
        dirty_list_.pop_front();
        dirty_list_.push_back(oid);
        scanned++;
        continue;
      }
      dirty_list_.pop_front();
      dirty_set_.erase(oid);
      continue;
    }
    const OsdId prim = osd_->ctx().osdmap().primary(pool_, oid);
    if (prim >= 0 && prim != osd_->id()) {
      // Another up OSD is the authoritative engine for this object; two
      // concurrent flush pipelines would race (one's eviction punches the
      // data part out from under the other's content read).  Re-derive our
      // view from the store: once the primary's flush replicates here the
      // entry goes clean and the object leaves our backlog — and if the
      // primary dies first, a later pass finds us authoritative.
      if (pending_writes_.count(oid) == 0) {
        drop_context(oid);
        if (!cached_map(oid).any_dirty()) {
          dirty_list_.pop_front();
          dirty_set_.erase(oid);
          continue;
        }
      }
      dirty_list_.pop_front();
      dirty_list_.push_back(oid);
      scanned++;
      continue;
    }
    if (hitset_.is_hot(oid, sched().now())) {
      // Hot object: not deduplicated until it cools down (key idea 3).
      perf_->inc(l_tier_hot_skips);
      dirty_list_.pop_front();
      dirty_list_.push_back(oid);
      scanned++;
      continue;
    }
    dirty_list_.pop_front();
    dirty_set_.erase(oid);
    inflight_oids_.insert(oid);
    // Charge the tick budget per chunk, capped so one object cannot hog
    // the whole tick while others wait.
    int n_dirty = 0;
    for (const auto& [eoff, e] : cached_map(oid).entries()) {
      if (e.dirty) n_dirty++;
    }
    const int chunk_budget = std::clamp(n_dirty, 1, std::min(st->budget, 32));
    st->budget -= chunk_budget;
    st->inflight++;
    flush_object(oid, chunk_budget, [this, oid, on_done](bool any_left) {
      inflight_oids_.erase(oid);
      if (any_left) {
        mark_dirty(oid);  // take another pass later
      } else {
        // Fully clean: the fragmentation this flush produced is now
        // measurable — queue a selective rewrite if it crossed the line.
        maybe_enqueue_rewrite(oid);
      }
      on_done();
    });
    return true;
  }

  // Selective-rewrite queue, after the dirty backlog: defragmentation is
  // strictly lower priority than getting dirty data deduplicated.
  while (!rewrite_queue_.empty()) {
    const std::string oid = rewrite_queue_.front();
    rewrite_queue_.pop_front();
    if (!rewrite_set_.erase(oid)) continue;  // cancelled (remove/forget)
    if (!osd_->local_exists(pool_, oid) || is_dirty(oid) ||
        pending_writes_.count(oid) > 0) {
      continue;  // went dirty again; a later clean flush re-queues it
    }
    st->budget--;
    st->inflight++;
    inflight_oids_.insert(oid);  // marks the object busy for scrub/GC
    rewrite_object(oid, [this, oid, on_done] {
      inflight_oids_.erase(oid);
      on_done();
    });
    return true;
  }
  return false;
}

void DedupTier::flush_object(const std::string& oid, int max_chunks,
                             std::function<void(bool)> done) {
  // Never read the data part while a client write to this object is still
  // applying — the context learns of dirtiness at submit time, the extents
  // only at durability.  Retry on a later pass.
  if (pending_writes_.count(oid)) {
    sched().after(0, [done = std::move(done)] { done(true); });
    return;
  }
  // Snapshot the dirty offsets; flush several chunks of this object in
  // parallel (the tiering agent flushes whole objects, not single chunks).
  std::vector<uint64_t> offsets;
  {
    ChunkMap& cm = cached_map(oid);
    for (const auto& [off, e] : cm.entries()) {
      if (e.dirty) {
        offsets.push_back(off);
        if (static_cast<int>(offsets.size()) >= max_chunks) break;
      }
    }
  }
  if (offsets.empty()) {
    sched().after(0, [done = std::move(done)] { done(false); });
    return;
  }
  if (recipe_on()) {
    // One buffered metadata apply per object per flush cycle: finish_flush
    // and the recipe compactor stage into this batch, apply_meta_batch
    // submits it once at cycle end.
    meta_batches_.try_emplace(oid);
  }

  struct FlushState {
    std::vector<uint64_t> offsets;
    size_t next = 0;
    int inflight = 0;
    std::function<void(bool)> done;
  };
  auto fs = std::make_shared<FlushState>();
  fs->offsets = std::move(offsets);
  fs->done = std::move(done);

  constexpr int kChunkParallelism = 8;
  auto pump_chunks = std::make_shared<std::function<void()>>();
  // Weak self-reference, same reason as handle_write's `step`: the flush
  // completions hold the strong refs, the stored function must not.
  std::weak_ptr<std::function<void()>> pump_weak = pump_chunks;
  *pump_chunks = [this, oid, fs, pump_weak]() {
    auto pump_chunks = pump_weak.lock();
    if (!pump_chunks) return;
    while (fs->next < fs->offsets.size() && fs->inflight < kChunkParallelism) {
      const uint64_t off = fs->offsets[fs->next++];
      fs->inflight++;
      flush_chunk_at(oid, off, [fs, pump_chunks] {
        fs->inflight--;
        (*pump_chunks)();
      });
    }
    if (fs->inflight == 0 && fs->next >= fs->offsets.size()) {
      auto done = std::move(fs->done);
      fs->done = [](bool) {};  // fire once
      if (meta_batch(oid) != nullptr) {
        // Recipe cycle: compact windows into recipe chunks, then apply
        // the one buffered metadata transaction; dirtiness is re-read
        // after both (a racy flush keeps its slot dirty).
        auto done_sp =
            std::make_shared<std::function<void(bool)>>(std::move(done));
        compact_recipes(oid, [this, oid, done_sp] {
          const ChunkMap* cm = cached_map_if_loaded(oid);
          apply_meta_batch(oid, cm != nullptr && cm->any_dirty(),
                           [done_sp](bool any) { (*done_sp)(any); });
        });
      } else {
        const ChunkMap* cm = cached_map_if_loaded(oid);
        done(cm != nullptr && cm->any_dirty());
      }
    }
  };
  (*pump_chunks)();
}

void DedupTier::flush_chunk_at(const std::string& oid, uint64_t offset,
                               std::function<void()> done) {
  ChunkMap& cm = cached_map(oid);
  ChunkMapEntry* e = cm.find(offset);
  if (e == nullptr || !e->dirty) {
    sched().after(0, std::move(done));
    return;
  }
  const ChunkMapEntry entry = *e;  // snapshot (incl. dirty_gen)

  // Background trace, born per flush attempt and finished when the
  // pipeline's continuation runs; an attempt abandoned by a crash drops it
  // unfinished (the tracker holds no reference until finish).
  obs::OpTraceRef trace;
  if (obs::OpTracker* trk = osd_->ctx().op_tracker()) {
    trace = trk->start("flush " + oid + "@" + std::to_string(offset),
                       sched().now());
  }
  done = [this, t0 = sched().now(), trace,
          inner = std::move(done)]() mutable {
    const SimTime now = sched().now();
    perf_->record(l_tier_flush_lat, static_cast<uint64_t>(now - t0));
    if (obs::OpTracker* trk = osd_->ctx().op_tracker()) {
      trk->finish(trace, now);
    }
    inner();
  };

  auto with_content = [this, oid, entry, trace](std::function<void()> done,
                                                Buffer content) mutable {
    run_flush_pipeline(oid, entry, std::move(content), std::move(done),
                       trace);
  };

  if (!entry.cached && entry.flushed()) {
    // Figure 8's cached=false/dirty=true state: the data part holds only
    // the newly written bytes.  The *background* flush performs the
    // read-modify-write the paper keeps off the foreground path: fetch the
    // superseded chunk, overlay the local extents, then continue.
    perf_->inc(l_tier_flush_merges);
    read_chunk_from_pool(
        entry.chunk_id, entry.chunk_off, entry.length, /*foreground=*/false,
        [this, oid, entry, with_content, trace,
         done = std::move(done)](Result<Buffer> r) mutable {
          if (!r.is_ok()) {
            // The superseded chunk can be gone for good: a crash between
            // the chunk put and the map update (Figure 9 steps 4-5) leaves
            // this entry pointing at a chunk whose reference the crashed
            // pipeline had already dropped, so GC may reclaim it before the
            // redo runs.  The replacement chunk from that crashed attempt
            // still records this entry's ref and holds the superseded
            // content merged with every extent flushed then — adopt it as
            // the merge base (the local extents overlaid below are a
            // superset of what it absorbed) instead of retrying a read that
            // can never succeed.
            const std::string adopt = find_chunk_recording_ref(
                oid, entry.offset, entry.chunk_id);
            if (adopt.empty()) {
              done();  // transient (e.g. chunk primary down); later pass
              return;
            }
            perf_->inc(l_tier_orphan_adoptions);
            ChunkMapEntry rebased = entry;
            rebased.chunk_id = adopt;
            read_chunk_from_pool(
                adopt, 0, entry.length, /*foreground=*/false,
                [this, oid, rebased, trace,
                 done = std::move(done)](Result<Buffer> r2) mutable {
                  if (!r2.is_ok()) {
                    done();
                    return;
                  }
                  Buffer content = std::move(r2).value();
                  content.resize(rebased.length);
                  overlay_local(oid, rebased.offset, &content);
                  run_flush_pipeline(oid, rebased, std::move(content),
                                     std::move(done), trace);
                },
                trace);
            return;
          }
          Buffer content = std::move(r).value();
          content.resize(entry.length);
          overlay_local(oid, entry.offset, &content);
          with_content(std::move(done), std::move(content));
        },
        trace);
    return;
  }

  // Whole chunk is local (cached, or never flushed): read the data part.
  // The store may return short when the logical size sits mid-chunk (or
  // was truncated by eviction); the chunk's tail is zeros by definition.
  osd_->submit_read(
      pool_, oid, entry.offset, entry.length,
      [with_content, len = entry.length,
       done = std::move(done)](Result<Buffer> r) mutable {
        if (!r.is_ok()) {
          done();
          return;
        }
        Buffer content = std::move(r).value();
        content.resize(len);
        with_content(std::move(done), std::move(content));
      },
      /*foreground=*/false);
}

FingerprintIndex* DedupTier::fp_index() {
  if (FingerprintIndex* idx = osd_->ctx().fp_index(osd_->node())) return idx;
  if (!own_fp_index_) own_fp_index_ = std::make_unique<FingerprintIndex>();
  return own_fp_index_.get();
}

uint64_t DedupTier::weak_hash_of(const Buffer& content) {
  if (weak_hash_hook_) return weak_hash_hook_(content);
  return WeakHasher::oneshot(content.span());
}

void DedupTier::fingerprint_async(const Buffer& content,
                                  std::function<void(const Fingerprint&)> k,
                                  obs::OpTraceRef trace) {
  const FingerprintAlgo algo = cfg().fp_algo;
  const bool fast = osd_->ctx().fp_fastpath();
  FingerprintIndex* idx = fast ? fp_index() : nullptr;
  if (const FingerprintCache::Entry* hit = fp_cache_.find(content, algo)) {
    // Known content: skip the hash and its simulated CPU cost entirely.
    perf_->inc(l_tier_fingerprint_cache_hits);
    perf_->record(l_tier_fingerprint_lat, 0);
    if (trace) trace->event("fingerprint_cache_hit", sched().now());
    if (idx != nullptr && hit->weak != FingerprintCache::kNoWeakHash) {
      // Keep the two caches coherent: a memo hit answers for this buffer
      // identity, but the *content* must stay probeable for the next
      // different buffer with the same bytes.  O(1) — the memo entry
      // remembered the weak hash.
      idx->insert(hit->weak, content, hit->fp);
    }
    k(hit->fp);
    return;
  }
  const SimTime t0 = sched().now();
  const size_t sp = trace ? trace->span_begin("fingerprint", t0) : 0;
  CpuModel& cpu = osd_->ctx().node_cpu(osd_->node());

  // Tier 1 of the fast path: weak-hash the bytes (an order of magnitude
  // cheaper than SHA) and probe the node index.  A verified hit replays
  // the miss path's virtual-time trajectory exactly — same costed CPU
  // execute, same latency record, same trace span — minus the host-side
  // SHA kernel; a collision or miss falls through to the real hash.
  const uint64_t weak =
      idx != nullptr ? weak_hash_of(content) : FingerprintCache::kNoWeakHash;
  if (idx != nullptr) {
    const FingerprintIndex::ProbeResult pr = idx->probe(weak, content);
    switch (pr.outcome) {
      case FingerprintIndex::Outcome::kVerifiedHit:
        perf_->inc(l_tier_weak_hash_hits);
        break;
      case FingerprintIndex::Outcome::kCollision:
        perf_->inc(l_tier_weak_hash_hits);
        perf_->inc(l_tier_weak_collisions);
        break;
      case FingerprintIndex::Outcome::kBloomNegative:
        perf_->inc(l_tier_bloom_negative_hits);
        perf_->inc(l_tier_weak_hash_misses);
        break;
      case FingerprintIndex::Outcome::kMiss:
        perf_->inc(l_tier_weak_hash_misses);
        break;
    }
    if (pr.hit()) {
      perf_->inc(l_tier_sha_avoided);
      // Copy out: the entry can be evicted before the costed completion.
      cpu.execute(
          cpu.fingerprint_cost(content.size(), algo == FingerprintAlgo::kSha1),
          [this, algo, content, weak, t0, trace = std::move(trace), sp,
           fp = *pr.fp, k = std::move(k)]() mutable {
            const SimTime now = sched().now();
            perf_->record(l_tier_fingerprint_lat,
                          static_cast<uint64_t>(now - t0));
            if (trace) trace->span_end(sp, now);
            fp_cache_.insert(content, algo, fp, weak);
            k(fp);
          });
      return;
    }
  }
  perf_->inc(l_tier_sha_computed);
  // Submit the real hash at issue time; a worker overlaps it with the
  // simulated cost below, and take() inside the completion callback is
  // where the result becomes observable (inline there in serial mode).
  auto fp_fut = kernel_async<Fingerprint>(
      osd_->ctx().exec_pool(), Kernel::kFingerprint,
      [algo, content] { return Fingerprint::compute(algo, content.span()); });
  cpu.execute(
      cpu.fingerprint_cost(content.size(), algo == FingerprintAlgo::kSha1),
      [this, algo, content, weak, idx, t0, trace = std::move(trace), sp,
       fp_fut = std::move(fp_fut), k = std::move(k)]() mutable {
        const SimTime now = sched().now();
        perf_->record(l_tier_fingerprint_lat,
                      static_cast<uint64_t>(now - t0));
        if (trace) trace->span_end(sp, now);
        const Fingerprint fp = fp_fut.take();
        fp_cache_.insert(content, algo, fp, weak);
        if (idx != nullptr) idx->insert(weak, content, fp);
        k(fp);
      });
}

void DedupTier::run_flush_pipeline(const std::string& oid,
                                   const ChunkMapEntry& entry, Buffer content,
                                   std::function<void()> done,
                                   obs::OpTraceRef trace) {
  {
        fingerprint_async(
            content,
            [this, oid, entry, content, trace, done = std::move(done)](
                const Fingerprint& fp) mutable {
              const std::string new_id = fp.hex();

              const ChunkRef ref{pool_, oid, entry.offset};

              if (entry.chunk_id == new_id) {
                // Rewrite with identical content: if the reference is
                // genuinely still held, clear dirty locally with no
                // chunk-pool traffic.  The premise must be verified — an
                // overwrite/overwrite-back sequence across a crash schedule
                // can deref and reclaim this chunk while the entry was
                // dirty, and a blind noop would then mark clean a map entry
                // whose chunk no longer exists.  On any doubt fall through
                // to the full put, which re-creates chunk and reference
                // idempotently.
                bool premise = false;
                const PoolId cp = cfg().chunk_pool;
                const OsdId cprim = osd_->ctx().osdmap().primary(cp, new_id);
                Osd* co = cprim >= 0 ? osd_->ctx().osd(cprim) : nullptr;
                if (co != nullptr && co->is_up() &&
                    co->local_exists(cp, new_id)) {
                  if (auto raw = co->local_getxattr(cp, new_id, kRefsXattr);
                      raw.is_ok()) {
                    if (auto dec = decode_refs(raw.value()); dec.is_ok()) {
                      premise = std::find(dec->begin(), dec->end(), ref) !=
                                dec->end();
                    }
                  }
                }
                if (premise) {
                  perf_->inc(l_tier_noop_flushes);
                  finish_flush(oid, entry.offset, new_id, entry.dirty_gen,
                               /*was_noop=*/true, std::move(done));
                  return;
                }
              }
              auto done_sp =
                  std::make_shared<std::function<void()>>(std::move(done));

              // De-reference of the superseded chunk runs LAST, only after
              // the map durably names the replacement.  The reverse order
              // (deref before put) has an unrecoverable crash window: the
              // deref can drop the old chunk's final reference and destroy
              // it while the map still points at it, and a crash before
              // the new chunk lands then loses the only copy of the
              // non-overlaid bytes — the redo's merge read can never
              // succeed.  With deref last, every crash point leaves either
              // (a) the old chunk referenced and the entry dirty (redo
              // converges via the idempotent put), or (b) the new chunk
              // mapped and the old one holding a stale ref that GC's
              // dangling-ref sweep drops (the paper's false-positive
              // refcounting, Section 4.6).
              auto deref_old = [this, oid, entry, new_id, ref, trace,
                                done_sp]() mutable {
                // Probed whether or not an old chunk exists, so the
                // consistency sweep covers first flushes too.
                if (fail_at(FailurePoint::kBeforeDeref, oid)) {
                  (*done_sp)();
                  return;
                }
                // A re-put of the entry's own chunk (failed noop premise:
                // the chunk had been reclaimed) supersedes nothing — a
                // deref here would drop the reference just re-taken.
                if (!entry.flushed() || entry.chunk_id == new_id) {
                  if (fail_at(FailurePoint::kAfterDeref, oid)) {
                    (*done_sp)();
                    return;
                  }
                  (*done_sp)();
                  return;
                }
                if (meta_batch(oid) != nullptr) {
                  // Batched cycle: the deref must not reach the chunk pool
                  // before the buffered map apply does — queue it on the
                  // batch (deref-last survives the batching; a crash that
                  // drops the queue leaves a dangling ref for GC, the same
                  // contract as a lost async deref).
                  queue_deferred_deref(oid, entry.chunk_id, ref);
                  if (fail_at(FailurePoint::kAfterDeref, oid)) {
                    (*done_sp)();
                    return;
                  }
                  (*done_sp)();
                  return;
                }
                if (cfg().async_deref) {
                  // False-positive refcounting (Section 4.6): fire the
                  // de-reference without waiting; the GC mops up if it is
                  // lost.
                  send_chunk_deref(entry.chunk_id, ref, /*foreground=*/false,
                                   [](Status) {}, trace);
                  if (fail_at(FailurePoint::kAfterDeref, oid)) {
                    (*done_sp)();
                    return;
                  }
                  (*done_sp)();
                } else {
                  send_chunk_deref(entry.chunk_id, ref, /*foreground=*/false,
                                   [this, oid, done_sp](Status) mutable {
                                     if (fail_at(FailurePoint::kAfterDeref,
                                                 oid)) {
                                       (*done_sp)();
                                       return;
                                     }
                                     (*done_sp)();
                                   },
                                   trace);
                }
              };

              auto after_put = [this, oid, entry, new_id, done_sp,
                                deref_old = std::move(deref_old)](
                                   Status s) mutable {
                if (!s.is_ok()) {
                  (*done_sp)();
                  return;
                }
                if (fail_at(FailurePoint::kAfterChunkPut, oid) ||
                    fail_at(FailurePoint::kBeforeMapUpdate, oid)) {
                  // Chunk persisted but the map update is lost: the object
                  // stays dirty and a redo finds the reference already
                  // present (idempotent put).
                  (*done_sp)();
                  return;
                }
                finish_flush(oid, entry.offset, new_id, entry.dirty_gen,
                             /*was_noop=*/false, std::move(deref_old));
              };

              perf_->inc(l_tier_chunks_flushed);
              perf_->inc(l_tier_flush_bytes, content.size());
              send_chunk_put(new_id, std::move(content), ref,
                             /*foreground=*/false, std::move(after_put),
                             trace);
            },
            trace);
  }
}

void DedupTier::finish_flush(const std::string& oid, uint64_t offset,
                             const std::string& new_id, uint64_t snapshot_gen,
                             bool was_noop, std::function<void()> done) {
  const ObjectKey key{pool_, oid};
  if (!osd_->local_exists(pool_, oid)) {
    // Object removed while the flush flew; its refs were queued by
    // handle_remove, but the chunk we just put took a fresh reference that
    // remove could not have seen.
    if (!was_noop) {
      pending_derefs_.push_back({new_id, ChunkRef{pool_, oid, offset}});
    }
    sched().after(0, std::move(done));
    return;
  }
  ChunkMap& cm = cached_map(oid);
  ChunkMapEntry* e = cm.find(offset);
  if (e == nullptr) {
    // The slot vanished (write_full shrink raced the flush): release the
    // reference we just took so the chunk is not leaked.
    if (!was_noop) {
      pending_derefs_.push_back({new_id, ChunkRef{pool_, oid, offset}});
    }
    sched().after(0, std::move(done));
    return;
  }

  Transaction txn;
  MetaBatch* batch = meta_batch(oid);
  const bool racy = e->dirty_gen != snapshot_gen;
  // Unconditional: a noop flush normally implies chunk_id == new_id, but a
  // redo re-based onto an adopted chunk (see flush_chunk_at) reaches here
  // with the entry still naming its reclaimed predecessor.
  e->chunk_id = new_id;
  // A flush always produces (or re-affirms) an ordinary chunk whose object
  // starts at the slot content; container membership ended when the slot
  // went dirty.
  e->chunk_off = 0;
  e->container = false;
  bump_map_stamp();
  if (racy) {
    // A client write landed mid-flush; the local data is newer than what
    // we pushed.  Keep the chunk dirty so the engine reprocesses it.
    perf_->inc(l_tier_racy_flushes);
    e->dirty = true;
  } else {
    e->dirty = false;
    const bool hot =
        cfg().cache_enabled && hitset_.is_hot(oid, sched().now());
    if (cfg().evict_after_flush && !hot) {
      // Reclaim the local copy: cached chunks drop their whole extent,
      // partial-dirty chunks drop the overlay bytes that just merged into
      // the chunk pool.
      if (e->cached) perf_->inc(l_tier_evictions);
      e->cached = false;
      if (batch != nullptr) {
        // Batched cycle: the punch must land in the same transaction as
        // the record that clears `cached` (see MetaBatch::evicts), so it
        // is deferred to the apply, which re-validates against the live
        // map first.
        batch->evicts.insert(e->offset);
      } else {
        txn.punch_hole(key, e->offset, e->length);
        // Once no chunk is cached or dirty, the object "contains no data
        // but only metadata" (Figure 8, object 2): drop the data part
        // entirely.  Hole-punching cannot reclaim space on erasure-coded
        // pools (re-encoding densifies), but an empty object can.
        bool any_local = false;
        for (const auto& [eoff, ent] : cm.entries()) {
          if (ent.cached || ent.dirty) {
            any_local = true;
            break;
          }
        }
        if (!any_local) txn.truncate(key, 0);
      }
    }
  }
  if (batch != nullptr) {
    // Defer the inline record too — the compactor may absorb this slot
    // into a recipe and never write it at all.  Baseline charges what the
    // unbatched engine would write right now.
    perf_->inc(l_tier_meta_bytes_baseline,
               ChunkMap::omap_key(e->offset).size() +
                   ChunkMap::kEntryEncodedBytes);
    batch->pending.insert(e->offset);
    sched().after(0, std::move(done));
    return;
  }
  put_entry_record(&txn, key, e);
  perf_->inc(l_tier_meta_txns);
  osd_->submit_write(pool_, oid, std::move(txn),
                     [done = std::move(done)](Status) { done(); },
                     /*foreground=*/false);
}

void DedupTier::enforce_cache_capacity() {
  const uint64_t cap = cfg().cache_capacity_bytes;
  if (cap == 0) return;

  // Clean cached bytes per object (dirty chunks are not evictable — their
  // only copy is local).  Contexts live in memory, so this scan is cheap
  // relative to the flush work a tick performs.
  auto clean_cached_bytes = [](const ChunkMap& cm) {
    uint64_t n = 0;
    for (const auto& [off, e] : cm.entries()) {
      if (e.cached && !e.dirty && e.flushed()) n += e.length;
    }
    return n;
  };
  uint64_t total = 0;
  for (const auto& [oid, cm] : map_cache_) total += clean_cached_bytes(cm);
  if (total <= cap) return;

  // Walk victims coldest-first.  Objects without evictable bytes just
  // leave the recency list.
  std::vector<std::string> order;
  for (const auto& [oid, unused] : cache_lru_) order.push_back(oid);
  for (auto it = order.rbegin(); it != order.rend() && total > cap; ++it) {
    const std::string& oid = *it;
    auto mit = map_cache_.find(oid);
    if (mit == map_cache_.end() || !osd_->local_exists(pool_, oid)) {
      cache_lru_.erase(oid);
      continue;
    }
    ChunkMap& cm = mit->second;
    const ObjectKey key{pool_, oid};
    Transaction txn;
    uint64_t reclaimed = 0;
    bool any_local = false;
    for (auto& [off, e] : cm.entries()) {
      if (e.cached && !e.dirty && e.flushed()) {
        e.cached = false;
        txn.punch_hole(key, e.offset, e.length);
        put_entry_record(&txn, key, &e);
        reclaimed += e.length;
        perf_->inc(l_tier_capacity_evictions);
      } else if (e.cached || e.dirty) {
        any_local = true;
      }
    }
    cache_lru_.erase(oid);
    if (reclaimed == 0) continue;
    bump_map_stamp();  // cached flags changed under any open window plans
    if (!any_local) txn.truncate(key, 0);
    total -= reclaimed;
    perf_->inc(l_tier_meta_txns);
    osd_->submit_write(pool_, oid, std::move(txn), [](Status) {},
                       /*foreground=*/false);
  }
}

void DedupTier::promote_object(const std::string& oid,
                               std::function<void()> done) {
  struct Target {
    uint64_t offset;
    uint32_t length;
    std::string chunk_oid;
    uint64_t chunk_off;
  };
  auto targets = std::make_shared<std::vector<Target>>();
  {
    ChunkMap& cm = cached_map(oid);
    for (const auto& [off, e] : cm.entries()) {
      if (!e.cached && e.flushed() && !e.dirty) {
        targets->push_back({off, e.length, e.chunk_id, e.chunk_off});
      }
    }
  }
  if (targets->empty()) {
    sched().after(0, std::move(done));
    return;
  }
  perf_->inc(l_tier_promotions);

  auto g = std::make_shared<Gather>();
  g->parts.resize(targets->size());
  g->outstanding = static_cast<int>(targets->size());
  // Weak self-reference: see post_process_write's `proceed`.
  std::weak_ptr<Gather> gw = g;
  g->done = [this, oid, targets, gw, done = std::move(done)](Status s) mutable {
    auto g = gw.lock();
    if (!g) return;
    if (!s.is_ok() || !osd_->local_exists(pool_, oid)) {
      done();
      return;
    }
    const ObjectKey key{pool_, oid};
    ChunkMap& cm = cached_map(oid);
    Transaction txn;
    for (size_t i = 0; i < targets->size(); i++) {
      const Target& t = (*targets)[i];
      ChunkMapEntry* e = cm.find(t.offset);
      // Only install if the chunk still references what we fetched.
      if (e != nullptr && e->chunk_id == t.chunk_oid &&
          e->chunk_off == t.chunk_off && !e->dirty) {
        txn.write(key, t.offset, g->parts[i]);
        e->cached = true;
        put_entry_record(&txn, key, e);
      }
    }
    bump_map_stamp();
    perf_->inc(l_tier_meta_txns);
    osd_->submit_write(pool_, oid, std::move(txn),
                       [done = std::move(done)](Status) { done(); },
                       /*foreground=*/false);
  };
  for (size_t i = 0; i < targets->size(); i++) {
    read_chunk_from_pool((*targets)[i].chunk_oid, (*targets)[i].chunk_off,
                         (*targets)[i].length,
                         /*foreground=*/false, [g, i](Result<Buffer> r) {
                           g->arrive(i, std::move(r));
                         });
  }
}

// --------------------------------------- fragmentation-aware restore path

void DedupTier::close_assembly_window(AssemblyWindow* w) {
  if (!w->open) return;
  if (w->planned > w->consumed) {
    perf_->inc(l_tier_asm_wasted_refs, w->planned - w->consumed);
  }
  w->open = false;
  w->buf.reset();
  w->planned = 0;
  w->consumed = 0;
}

double DedupTier::fragmentation_of(const ChunkMap& cm) const {
  uint64_t chunks = 0;
  uint64_t extents = 0;
  const ChunkMapEntry* prev = nullptr;
  for (const auto& [off, e] : cm.entries()) {
    if (!e.flushed() || e.cached || e.dirty) {
      prev = nullptr;  // locally served slots break no remote extent
      continue;
    }
    chunks++;
    const bool contiguous = prev != nullptr && prev->chunk_id == e.chunk_id &&
                            prev->offset + prev->length == e.offset &&
                            prev->chunk_off + prev->length == e.chunk_off;
    if (!contiguous) extents++;
    prev = &e;
  }
  if (chunks == 0) return 0.0;
  return static_cast<double>(extents) / static_cast<double>(chunks);
}

void DedupTier::maybe_enqueue_rewrite(const std::string& oid) {
  if (!cfg().restore_rewrite) return;
  if (rewrite_set_.count(oid) > 0) return;
  if (!osd_->local_exists(pool_, oid)) return;
  if (hitset_.is_hot(oid, sched().now())) return;  // promotion serves it
  const ChunkMap& cm = cached_map(oid);
  if (fragmentation_of(cm) <= cfg().rewrite_frag_threshold) return;
  rewrite_set_.insert(oid);
  rewrite_queue_.push_back(oid);
}

void DedupTier::rewrite_object(const std::string& oid,
                               std::function<void()> done) {
  if (!osd_->local_exists(pool_, oid) ||
      osd_->ctx().osdmap().primary(pool_, oid) != osd_->id() ||
      hitset_.is_hot(oid, sched().now())) {
    sched().after(0, std::move(done));
    return;
  }
  ChunkMap& cm = cached_map(oid);

  // Select runs of 2..rewrite_run_len adjacent cold flushed slots, capped
  // at rewrite_max_pct of the object's eligible chunks.  Container members
  // are excluded, so a rewritten object converges instead of re-coalescing
  // forever.
  struct Slot {
    uint64_t offset;
    uint32_t length;
    std::string chunk_id;
    uint64_t chunk_off;
  };
  using Run = std::vector<Slot>;
  auto runs = std::make_shared<std::vector<Run>>();
  {
    const size_t run_cap =
        static_cast<size_t>(std::max(2, cfg().rewrite_run_len));
    uint64_t eligible = 0;
    for (const auto& [off, e] : cm.entries()) {
      if (e.flushed() && !e.cached && !e.dirty && !e.container &&
          e.length > 0) {
        eligible++;
      }
    }
    const uint64_t chunk_cap = std::max<uint64_t>(
        2, eligible *
               static_cast<uint64_t>(std::clamp(cfg().rewrite_max_pct, 0, 100)) /
               100);
    uint64_t taken = 0;
    Run cur;
    auto close_run = [&] {
      if (cur.size() >= 2) {
        runs->push_back(cur);
      } else {
        taken -= cur.size();  // a single slot gains nothing; return budget
      }
      cur.clear();
    };
    for (const auto& [off, e] : cm.entries()) {
      const bool ok = e.flushed() && !e.cached && !e.dirty && !e.container &&
                      e.length > 0 && taken < chunk_cap;
      const bool adjacent =
          !cur.empty() && cur.back().offset + cur.back().length == e.offset;
      if (!ok || !adjacent) close_run();
      if (!ok) continue;
      cur.push_back({e.offset, e.length, e.chunk_id, e.chunk_off});
      taken++;
      if (cur.size() >= run_cap) close_run();
    }
    close_run();
  }
  if (runs->empty()) {
    sched().after(0, std::move(done));
    return;
  }

  // One run at a time: read the slots, fingerprint the concatenation (the
  // container OID is content-addressed like any chunk, so deep scrub's
  // recompute holds), put it carrying one ref per slot, update the map,
  // then — deref-last, the Figure 9 ordering — release the old chunks.
  auto idx = std::make_shared<size_t>(0);
  auto step = std::make_shared<std::function<void()>>();
  std::weak_ptr<std::function<void()>> step_weak = step;
  *step = [this, oid, runs, idx, step_weak,
           done = std::move(done)]() mutable {
    auto step = step_weak.lock();
    if (!step) return;
    if (*idx >= runs->size() || !osd_->local_exists(pool_, oid)) {
      done();
      return;
    }
    const Run run = (*runs)[(*idx)++];
    auto g = std::make_shared<Gather>();
    g->parts.resize(run.size());
    g->outstanding = static_cast<int>(run.size());
    // Weak self-reference: see post_process_write's `proceed`.
    std::weak_ptr<Gather> gw = g;
    g->done = [this, oid, run, gw, step](Status s) mutable {
      auto g = gw.lock();
      if (!g) return;
      if (!s.is_ok()) {
        (*step)();  // a slot vanished mid-read; skip this run
        return;
      }
      size_t total = 0;
      for (const auto& sl : run) total += sl.length;
      Buffer content(total);
      size_t pos = 0;
      for (size_t i = 0; i < run.size(); i++) {
        Buffer p = std::move(g->parts[i]);
        p.resize(run[i].length);  // short tail chunks zero-fill
        content.write_at(pos, p);
        pos += run[i].length;
      }
      fingerprint_async(
          content,
          [this, oid, run, content, step](const Fingerprint& fp) mutable {
            const std::string cid = fp.hex();
            std::vector<ChunkRef> extras;
            extras.reserve(run.size() - 1);
            for (size_t i = 1; i < run.size(); i++) {
              extras.push_back({pool_, oid, run[i].offset});
            }
            const ChunkRef ref0{pool_, oid, run.front().offset};
            auto after_put = [this, oid, run, cid, step](Status ps) mutable {
              if (!ps.is_ok() || !osd_->local_exists(pool_, oid)) {
                // Container may exist with refs no map names; the GC
                // dangling-ref sweep reclaims it.
                (*step)();
                return;
              }
              ChunkMap& cm2 = cached_map(oid);
              const ObjectKey key{pool_, oid};
              Transaction txn;
              auto derefs = std::make_shared<
                  std::vector<std::pair<std::string, ChunkRef>>>();
              uint64_t cum = 0;
              for (const auto& sl : run) {
                ChunkMapEntry* e = cm2.find(sl.offset);
                const ChunkRef r{pool_, oid, sl.offset};
                if (e != nullptr && !e->dirty && e->chunk_id == sl.chunk_id &&
                    e->chunk_off == sl.chunk_off) {
                  e->chunk_id = cid;
                  e->chunk_off = cum;
                  e->container = true;
                  put_entry_record(&txn, key, e);
                  derefs->push_back({sl.chunk_id, r});
                  perf_->inc(l_tier_rewrite_chunks);
                  perf_->inc(l_tier_rewrite_bytes, sl.length);
                } else {
                  // The slot changed mid-rewrite: the container's ref for
                  // it is already stale — release it instead.
                  derefs->push_back({cid, r});
                }
                cum += sl.length;
              }
              perf_->inc(l_tier_rewrite_runs);
              bump_map_stamp();
              perf_->inc(l_tier_meta_txns);
              osd_->submit_write(
                  pool_, oid, std::move(txn),
                  [this, derefs, step](Status) {
                    // Deref-last: only once the map durably names the
                    // container may the old chunks lose their refs.
                    for (auto& d : *derefs) {
                      pending_derefs_.push_back(std::move(d));
                    }
                    (*step)();
                  },
                  /*foreground=*/false);
            };
            send_chunk_put(cid, content, ref0, /*foreground=*/false,
                           std::move(after_put), nullptr, std::move(extras));
          });
    };
    for (size_t i = 0; i < run.size(); i++) {
      read_chunk_from_pool(run[i].chunk_id, run[i].chunk_off, run[i].length,
                           /*foreground=*/false, [g, i](Result<Buffer> r) {
                             g->arrive(i, std::move(r));
                           });
    }
  };
  (*step)();
}

}  // namespace gdedup
