#pragma once

// DedupTier — the paper's deduplication design, installed per metadata-pool
// OSD (the role the tiering agent plays in the Ceph implementation).
//
// Write path (Section 4.5): data lands in the metadata object's data part
// (cached=true, dirty=true in the chunk map); a partial write over an
// evicted chunk leaves the entry in Figure 8's cached=false/dirty=true
// state and the background flush merges the missing bytes from the chunk
// pool, keeping the read-modify-write off the foreground path (on
// erasure-coded base pools the fill is pre-read in the foreground instead,
// because dense re-encoding cannot preserve the overlay extents).  The
// object joins the dirty list and the client is acked after ordinary
// replication — no fingerprinting on the foreground path.
//
// Read path: cached chunks are served locally; non-cached chunks redirect
// to the chunk pool by chunk-object ID (double hashing resolves placement);
// hot objects get promoted back into the metadata object.
//
// Background engine (Section 4.4.1): walks the dirty list under watermark
// rate control, skips hot objects, fingerprints each dirty chunk
// (CPU-costed *and* actually computed), de-references the old chunk, puts
// the new chunk into the chunk pool (create-or-addref), then updates the
// chunk map — evicting the cached copy of cold chunks, which is where the
// space saving is realized.  Objects flush several chunks concurrently,
// like Ceph's tiering agent flushing whole objects.
//
// Chunk maps are kept in an in-memory object context (map_cache_), the
// single-writer authoritative copy on the primary; every mutation is
// applied to the cache synchronously and the touched entries ride as
// per-entry omap records in the same transaction as the data, so replicas
// and recovery always see a consistent self-contained object.  After a
// crash the cache is rebuilt from the persisted entries
// (rebuild_dirty_list).
//
// Inline mode implements the Figure 5(a) baseline: the whole pipeline runs
// synchronously on the write path, including the partial-write
// read-modify-write.

#include <deque>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "common/lru.h"
#include "dedup/chunk_map.h"
#include "dedup/chunker.h"
#include "dedup/fingerprint_cache.h"
#include "dedup/fingerprint_index.h"
#include "dedup/hitset.h"
#include "dedup/rate_controller.h"
#include "obs/op_tracker.h"
#include "osd/osd.h"

namespace gdedup {

// Crash-injection points in the engine's flush pipeline, mirroring the
// failure steps of the consistency model (Section 4.6, Figure 9).
enum class FailurePoint {
  kBeforeDeref,      // old chunk still referenced, nothing happened yet
  kAfterDeref,       // old ref dropped, new chunk not yet stored
  kAfterChunkPut,    // chunk stored in chunk pool, map not yet updated
  kBeforeMapUpdate,  // alias of the ack-lost case (step 5 in Figure 9)
};
constexpr int kNumEngineFailurePoints = 4;

inline const char* failure_point_name(FailurePoint p) {
  switch (p) {
    case FailurePoint::kBeforeDeref: return "before_deref";
    case FailurePoint::kAfterDeref: return "after_deref";
    case FailurePoint::kAfterChunkPut: return "after_chunk_put";
    case FailurePoint::kBeforeMapUpdate: return "before_map_update";
  }
  return "?";
}

// Perf-counter indices for one tier engine (registry entity
// "tier.osd<id>.pool<pool>").  Counters are the source of truth;
// DedupTierStats below is a compatibility view rebuilt on demand.
enum {
  l_tier_first = 2000,
  l_tier_writes,
  l_tier_reads,
  l_tier_removes,
  l_tier_prereads,
  l_tier_flush_merges,
  l_tier_cached_read_chunks,
  l_tier_redirected_read_chunks,
  l_tier_chunks_flushed,
  l_tier_flush_bytes,
  l_tier_noop_flushes,
  l_tier_derefs,
  l_tier_evictions,
  l_tier_capacity_evictions,
  l_tier_promotions,
  l_tier_hot_skips,
  l_tier_racy_flushes,
  l_tier_degraded_pulls,
  l_tier_orphan_adoptions,
  l_tier_engine_ticks,
  l_tier_engine_aborts,
  l_tier_fingerprint_cache_hits,
  // Two-tier fingerprint fast path (dedup/fingerprint_index.h).  Host-
  // side work only — never digested: they differ with the fast path
  // on/off while the determinism digest must not.
  l_tier_weak_hash_hits,      // index candidate found (pre-verification)
  l_tier_weak_hash_misses,    // no candidate under the weak hash
  l_tier_weak_collisions,     // candidate bytes differed; SHA fallback
  l_tier_bloom_negative_hits, // negative answered by the shard filter
  l_tier_sha_computed,        // full SHA kernels actually run
  l_tier_sha_avoided,         // full SHA skipped via verified index hit
  // Fragmentation-aware restore path.  The read-amp and forward-assembly
  // counters are host-side observability (reported, never digested: the
  // assembly cache must not move virtual time).  The rewrite counters
  // only move in restore_rewrite mode, which carries its own frozen
  // digest because it intentionally changes placement.
  l_tier_read_logical_bytes,   // logical bytes served by tier reads
  l_tier_read_chunk_objects,   // distinct chunk-pool objects touched, per read
  l_tier_read_chunk_rpcs,      // chunk-pool read RPCs issued by reads
  l_tier_asm_window_opens,     // sequential windows opened
  l_tier_asm_hits,             // redirected chunk reads served from a window
  l_tier_asm_prefetched_refs,  // chunk refs planned into windows
  l_tier_asm_wasted_refs,      // planned refs never consumed before close
  l_tier_rewrite_runs,         // container objects written by selective rewrite
  l_tier_rewrite_chunks,       // map slots coalesced into containers
  l_tier_rewrite_bytes,        // bytes rewritten into containers
  // Recipe metadata dedup (dedup/recipe.h).  Host-side observability,
  // never digested.  The recipe counters only move in recipe mode (which
  // carries its own frozen digest); the meta byte/txn counters move in
  // both modes so off-vs-on runs compare on the same metric.  baseline =
  // what the legacy 150-byte per-slot encoding would have written for the
  // same mutations, so baseline/actual is the derived meta_dedup_ratio.
  l_tier_recipe_chunks,        // recipe chunk objects put (created new)
  l_tier_recipe_hits,          // recipe puts deduplicated (chunk existed)
  l_tier_meta_txns,            // metadata-bearing transactions submitted
  l_tier_meta_bytes_baseline,  // legacy-encoding bytes for the same updates
  l_tier_meta_bytes_actual,    // metadata bytes actually written
  // Telemetry gauges mirrored on demand by sync_telemetry_gauges() — the
  // hot paths never touch them.
  l_tier_backlog,             // gauge: dirty_backlog() snapshot
  l_tier_backlog_derefs,      // gauge: queued deref work items
  l_tier_rate_credits_x1000,  // gauge: RateController credits * 1000
  l_tier_rate_demand,         // gauge: sliding-window demand (iops or B/s)
  l_tier_rate_regime,         // gauge: 0 unthrottled / 1 mid / 2 high
  l_tier_recipe_inline_tail,  // gauge: loaded entries still inline-on-disk
  l_tier_bloom_rebuilds,      // gauge: node fp-index bloom rebuilds so far
  l_tier_bloom_rebuild_ns,    // gauge: modeled ns spent in those rebuilds
  l_tier_write_lat,        // tier write handling, entry -> client ack, ns
  l_tier_read_lat,         // tier read handling, entry -> reply, ns
  l_tier_fingerprint_lat,  // costed fingerprint compute (cache hits = 0ns)
  l_tier_chunk_put_lat,    // chunk-pool put round trip
  l_tier_chunk_deref_lat,  // chunk-pool deref round trip
  l_tier_merge_read_lat,   // chunk-pool reads (RMW fills / redirects)
  l_tier_flush_lat,        // one chunk flush attempt, launch -> completion
  l_tier_read_gap,         // log2 |pg distance| between consecutive remote
                           // chunk placements in one read (seek locality)
  l_tier_last,
};

struct DedupTierStats {
  uint64_t writes = 0;
  uint64_t reads = 0;
  uint64_t removes = 0;
  uint64_t prereads = 0;      // foreground RMW fills (inline mode)
  uint64_t flush_merges = 0;  // background fills of partial dirty chunks
  uint64_t cached_read_chunks = 0;
  uint64_t redirected_read_chunks = 0;
  uint64_t chunks_flushed = 0;    // chunk objects pushed to the chunk pool
  uint64_t flush_bytes = 0;
  uint64_t noop_flushes = 0;      // content unchanged; dirty cleared locally
  uint64_t derefs = 0;
  uint64_t evictions = 0;
  uint64_t capacity_evictions = 0;  // LRU cache-cap reclaims (Section 4.3)
  uint64_t promotions = 0;
  uint64_t hot_skips = 0;
  uint64_t racy_flushes = 0;      // object changed mid-flush; stayed dirty
  uint64_t degraded_pulls = 0;    // objects recovered on-demand by a new
                                  // primary before serving an op
  uint64_t orphan_adoptions = 0;  // redo flushes re-based onto the chunk a
                                  // crashed attempt already put
  uint64_t engine_ticks = 0;
  uint64_t engine_aborts = 0;     // injected failures taken
  uint64_t fingerprint_cache_hits = 0;  // hashes skipped via COW memoization
  // Two-tier fast path (reported, never digested — see the counter enum).
  uint64_t weak_hash_hits = 0;
  uint64_t weak_hash_misses = 0;
  uint64_t weak_collisions = 0;
  uint64_t bloom_negative_hits = 0;
  uint64_t sha_computed = 0;
  uint64_t sha_avoided = 0;
  // Fragmentation-aware restore path (reported, never digested except the
  // rewrite counters under restore_rewrite's own frozen digest).
  uint64_t read_logical_bytes = 0;
  uint64_t read_chunk_objects = 0;
  uint64_t read_chunk_rpcs = 0;
  uint64_t asm_window_opens = 0;
  uint64_t asm_hits = 0;
  uint64_t asm_prefetched_refs = 0;
  uint64_t asm_wasted_refs = 0;
  uint64_t rewrite_runs = 0;
  uint64_t rewrite_chunks = 0;
  uint64_t rewrite_bytes = 0;
  // Recipe metadata dedup (only move in recipe mode).
  uint64_t recipe_chunks = 0;
  uint64_t recipe_hits = 0;
  uint64_t meta_txns = 0;
  uint64_t meta_bytes_baseline = 0;
  uint64_t meta_bytes_actual = 0;
};

class DedupTier : public TierService {
 public:
  DedupTier(Osd* osd, PoolId pool);
  ~DedupTier() override = default;

  // --- TierService ---
  void handle_read(const OsdOp& op, ReplyFn reply) override;
  void handle_write(const OsdOp& op, ReplyFn reply) override;
  void handle_remove(const OsdOp& op, ReplyFn reply) override;
  void start() override;
  void stop() override;
  size_t dirty_backlog() const override {
    return dirty_list_.size() + inflight_oids_.size() +
           pending_derefs_.size() + promote_queue_.size() +
           rewrite_queue_.size();
  }
  bool object_busy(const std::string& oid) const override {
    return is_dirty(oid) || pending_writes_.count(oid) > 0;
  }
  void forget_object(const std::string& oid) override {
    // In-flight markers and pending-write counters stay: their completions
    // are find()-based and clean up after themselves.
    dirty_set_.erase(oid);
    promote_set_.erase(oid);
    map_cache_.erase(oid);
    cache_lru_.erase(oid);
    asm_windows_.erase(oid);
    rewrite_set_.erase(oid);
  }

  // --- introspection / test hooks ---
  // Compatibility view rebuilt from the perf counters on every call.
  const DedupTierStats& stats() const {
    refresh_stats_view();
    return stats_view_;
  }

  obs::PerfCounters& perf() { return *perf_; }
  const obs::PerfCounters& perf() const { return *perf_; }

  // Refresh the l_tier_backlog* / l_tier_rate_* gauges from live engine
  // state.  Called by the telemetry presample hook (and obs::dump) so
  // gauge freshness costs nothing on the write/flush hot paths.  Pure
  // reads: never accrues credits or advances any clock.
  void sync_telemetry_gauges();

  // Return true from the hook to crash the engine at that point (the
  // in-flight flush is abandoned; redo must converge).
  using FailureHook = std::function<bool(FailurePoint, const std::string&)>;
  void set_failure_hook(FailureHook hook) { failure_hook_ = std::move(hook); }

  // Override the weak hash of the fast path — the collision-injection
  // hook.  A test returning a constant forces every chunk onto one index
  // key, so distinct contents must survive on byte verification alone.
  // nullptr restores WeakHasher::oneshot.
  using WeakHashHook = std::function<uint64_t(const Buffer&)>;
  void set_weak_hash_hook(WeakHashHook hook) {
    weak_hash_hook_ = std::move(hook);
  }

  // Rebuild volatile state (dirty list, chunk-map cache) from the local
  // store — the self-contained-object recovery path after a crash.
  void rebuild_dirty_list();

  bool is_dirty(const std::string& oid) const {
    return dirty_set_.count(oid) > 0 || inflight_oids_.count(oid) > 0;
  }

  // Force one engine pass immediately (tests drive time explicitly).
  void kick();

 private:
  const DedupTierConfig& cfg() const {
    return osd_->ctx().osdmap().pool(pool_).dedup;
  }
  Scheduler& sched() { return osd_->ctx().sched(); }

  // -- object context (authoritative in-memory chunk map on the primary) --
  ChunkMap& cached_map(const std::string& oid);
  const ChunkMap* cached_map_if_loaded(const std::string& oid) const;
  // Copy the bytes of local extents overlapping [off, off+buf->size())
  // over `buf` (newest data wins when merging with chunk-pool content).
  void overlay_local(const std::string& oid, uint64_t off, Buffer* buf) const;
  void drop_context(const std::string& oid) { map_cache_.erase(oid); }

  uint64_t logical_size(const std::string& oid) const;
  void mark_dirty(const std::string& oid);

  // -- write path --
  void post_process_write(const OsdOp& op, ReplyFn reply);
  void handle_read_attempt(const OsdOp& op, ReplyFn reply, int attempt);
  void inline_write(const OsdOp& op, ReplyFn reply);
  // Chunk-pool RPC helpers.  Each records its round-trip latency histogram
  // and, when a trace rides along, brackets itself in a named span.
  void read_chunk_from_pool(const std::string& chunk_oid, uint64_t off,
                            uint64_t len, bool foreground,
                            std::function<void(Result<Buffer>)> done,
                            obs::OpTraceRef trace = nullptr);
  void send_chunk_put(const std::string& chunk_oid, Buffer data,
                      const ChunkRef& ref, bool foreground,
                      std::function<void(Status)> done,
                      obs::OpTraceRef trace = nullptr,
                      std::vector<ChunkRef> extra_refs = {});
  void send_chunk_deref(const std::string& chunk_oid, const ChunkRef& ref,
                        bool foreground, std::function<void(Status)> done,
                        obs::OpTraceRef trace = nullptr);
  // Find a chunk-pool object (other than `not_this`) whose refs xattr
  // records this entry; used to re-base a redo flush whose superseded
  // chunk was reclaimed (see flush_chunk_at).
  std::string find_chunk_recording_ref(const std::string& oid, uint64_t offset,
                                       const std::string& not_this) const;

  // -- engine --
  struct TickState {
    int budget = 0;
    int inflight = 0;
  };
  void schedule_tick();
  void tick();
  void pump(std::shared_ptr<TickState> st);
  bool launch_one(const std::shared_ptr<TickState>& st);

  // Flush up to `max_chunks` dirty chunks of one object, several in
  // flight; done(any_left) reports whether dirty chunks remain.
  void flush_object(const std::string& oid, int max_chunks,
                    std::function<void(bool any_left)> done);
  void flush_chunk_at(const std::string& oid, uint64_t offset,
                      std::function<void()> done);
  // fingerprint -> deref old -> put new -> finish, for resolved content.
  void run_flush_pipeline(const std::string& oid, const ChunkMapEntry& entry,
                          Buffer content, std::function<void()> done,
                          obs::OpTraceRef trace = nullptr);
  void finish_flush(const std::string& oid, uint64_t offset,
                    const std::string& new_id, uint64_t snapshot_gen,
                    bool was_noop, std::function<void()> done);
  void promote_object(const std::string& oid, std::function<void()> done);

  // -- fragmentation-aware restore path --
  // Forward-assembly window: a per-object sequential-read detector that,
  // once a streak is established, plans the next chunk refs from the map
  // and assembles them into one window buffer.  Host-side only: every
  // chunk-pool RPC, costed read, and digested counter happens identically
  // with the window on or off — replies are merely carved from the window
  // buffer as zero-copy slices instead of re-fetched.  Plans are
  // validated against map_mutation_stamp_, bumped at every map-mutating
  // site, so a stale window silently dissolves.
  struct AssemblyWindow {
    uint64_t expect_off = 0;  // predicted offset of the next read
    int streak = 0;           // consecutive sequential reads seen
    bool open = false;
    uint64_t stamp = 0;       // map_mutation_stamp_ when planned
    uint64_t win_begin = 0;
    uint64_t win_end = 0;
    // Assembled [win_begin, win_end) bytes.  Shared so in-flight read
    // completions write into the same storage the window slices replies
    // from (a by-value Buffer copy would detach on first write).
    std::shared_ptr<Buffer> buf;
    uint64_t planned = 0;     // refs planned into this window
    uint64_t consumed = 0;    // refs actually served from it
  };
  static constexpr int kAsmStreakThreshold = 3;  // reads before a window
  static constexpr int kAsmWindowChunks = 16;    // refs planned per window
  void close_assembly_window(AssemblyWindow* w);
  void bump_map_stamp() { map_mutation_stamp_++; }

  // Fragmentation = extents/chunks over the flushed, non-cached map
  // slots, where an extent is a maximal run contiguous inside one chunk
  // object.  0 = fully sequential, ->1 = every chunk is its own seek.
  double fragmentation_of(const ChunkMap& cm) const;
  // After an object flushes fully clean: queue it for selective rewrite
  // if restore_rewrite is on and fragmentation exceeds the threshold.
  void maybe_enqueue_rewrite(const std::string& oid);
  // Coalesce runs of adjacent cold flushed chunks into fresh contiguous
  // container objects (one put carrying one ref per slot), then swap the
  // map entries and deref the old chunks via pending_derefs_.
  void rewrite_object(const std::string& oid, std::function<void()> done);

  // -- recipe metadata dedup (dedup/recipe.h) --
  bool recipe_on() const { return osd_->ctx().recipe_dedup(); }
  // Fixed offset-aligned compaction window span in bytes.
  uint64_t recipe_window_span() const {
    const int n = cfg().recipe_entries > 0 ? cfg().recipe_entries : 32;
    return static_cast<uint64_t>(n) * cfg().chunk_size;
  }
  // Encode an entry in the active codec (packed in recipe mode, legacy
  // 150-byte otherwise).
  Buffer encode_entry_record(const ChunkMapEntry& e) const;
  // Metadata write accounting: actual bytes hit the osd/tier counters in
  // both modes; baseline charges what the legacy per-slot encoding would
  // have written for the same entry-set event.
  void account_meta_entry_write(size_t key_bytes, size_t value_bytes);
  // Stage an inline omap record for `e` into `txn`, marking it
  // inline-on-disk and accounting the bytes.
  void put_entry_record(Transaction* txn, const ObjectKey& key,
                        ChunkMapEntry* e);

  // One buffered metadata apply per object per flush cycle: finish_flush
  // and the recipe compactor stage omap mutations here instead of issuing
  // per-slot submit_writes, and chunk derefs queue here so the Figure 9
  // deref-last ordering survives batching (they move to pending_derefs_
  // only after the batch applies).
  struct MetaBatch {
    Transaction txn;
    std::vector<std::pair<std::string, ChunkRef>> derefs;
    // Slots whose clean post-flush state is not yet persisted:
    // finish_flush defers the inline record so the compactor can absorb
    // the slot into a recipe instead of writing it (the common case costs
    // one ~60-byte record per window, not 150 bytes per slot).
    std::set<uint64_t> pending;
    // Slots whose data-part eviction (hole punch, possibly a trailing
    // truncate-to-zero) was decided by finish_flush but must land in the
    // SAME transaction as the records that clear their `cached` bits: a
    // crash between an eager punch and a deferred record would leave an
    // on-disk map claiming locally-cached bytes over a hole, and the redo
    // would flush zeros.  apply_meta_batch re-validates each slot against
    // the live map before punching, so a foreground write that re-dirtied
    // the slot mid-cycle cancels its eviction.
    std::set<uint64_t> evicts;
  };
  MetaBatch* meta_batch(const std::string& oid) {
    auto it = meta_batches_.find(oid);
    return it == meta_batches_.end() ? nullptr : &it->second;
  }
  // Queue a deref into the open batch for `oid`, or straight into
  // pending_derefs_ when no batch is open (foreground paths).
  void queue_deferred_deref(const std::string& oid,
                            const std::string& chunk_id, const ChunkRef& ref);
  // Stage inline records for the batch-pending slots among `members`
  // (windows the compactor could not absorb fall back to per-slot form).
  void persist_pending_slots(const std::string& oid,
                             const std::vector<uint64_t>& members);
  // Windowed recipe compaction with hysteresis: stage new/changed recipe
  // records (and drop absorbed inline shadows) into the batch, putting
  // any new recipe chunks first.  Calls done when all puts completed.
  void compact_recipes(const std::string& oid, std::function<void()> done);
  // Apply the object's batched metadata transaction, then release its
  // queued derefs and report `any_dirty` through done.
  void apply_meta_batch(const std::string& oid, bool any_dirty,
                        std::function<void(bool)> done);
  // Drop every recipe record of `oid` (staging omap_rms into `txn`) and
  // queue derefs of the recipe chunks; the caller must re-inline any
  // surviving entries.  Used by write_full truncation and remove.
  void break_recipes(const std::string& oid, ChunkMap* cm, Transaction* txn);

  // Section 4.3's LRU cache manager: when cache_capacity_bytes is set,
  // evict the coldest objects' clean cached chunks until under the cap.
  void enforce_cache_capacity();
  void touch_cache_lru(const std::string& oid) { cache_lru_.put(oid, 0); }

  bool fail_at(FailurePoint p, const std::string& oid);

  // Fingerprint a chunk's content and deliver the result.  Probes the
  // COW-aware memoization cache first: a hit skips both the real hash and
  // the simulated CPU cost (and bumps the fingerprint_cache_hits counter);
  // a miss computes under the costed CPU model and populates the cache.
  // With the fast path on, a memo miss probes the node's fingerprint
  // index by weak hash before falling back to the SHA kernel — the
  // simulated CPU cost is charged identically either way, so only the
  // host wall clock (and the never-digested fast-path counters) changes.
  void fingerprint_async(const Buffer& content,
                         std::function<void(const Fingerprint&)> k,
                         obs::OpTraceRef trace = nullptr);

  // Node-shared fingerprint index (nullptr context -> private fallback).
  FingerprintIndex* fp_index();
  uint64_t weak_hash_of(const Buffer& content);

  void refresh_stats_view() const;

  Osd* osd_;
  PoolId pool_;
  FixedChunker chunker_;
  HitSet hitset_;
  RateController rate_;
  obs::PerfCountersRef perf_;
  mutable DedupTierStats stats_view_;
  FingerprintCache fp_cache_;

  std::unordered_map<std::string, ChunkMap> map_cache_;
  uint64_t dirty_gen_counter_ = 1;
  // Client writes whose data transaction has not yet applied everywhere;
  // the engine must not read an object's data part before the write that
  // dirtied it is durable (the cache learns of dirtiness at submit time).
  std::unordered_map<std::string, int> pending_writes_;

  LruMap<std::string, int> cache_lru_{1 << 20};  // recency of cached objects

  std::deque<std::string> dirty_list_;
  std::unordered_set<std::string> dirty_set_;
  std::unordered_set<std::string> inflight_oids_;
  std::deque<std::pair<std::string, ChunkRef>> pending_derefs_;
  std::deque<std::string> promote_queue_;
  std::unordered_set<std::string> promote_set_;
  // Restore path: per-object assembly windows, the map-mutation stamp
  // that invalidates their plans, and the selective-rewrite queue.
  std::unordered_map<std::string, AssemblyWindow> asm_windows_;
  uint64_t map_mutation_stamp_ = 1;
  std::deque<std::string> rewrite_queue_;
  std::unordered_set<std::string> rewrite_set_;
  // Recipe mode: per-object open metadata batches (one flush cycle each).
  std::unordered_map<std::string, MetaBatch> meta_batches_;

  FailureHook failure_hook_;
  WeakHashHook weak_hash_hook_;
  // Fallback index for cluster-less fixtures (ctx().fp_index == nullptr);
  // created on first use so fixtures that never fingerprint pay nothing.
  std::unique_ptr<FingerprintIndex> own_fp_index_;
  bool running_ = false;
  bool in_tick_ = false;
  Scheduler::EventId tick_event_ = 0;
};

}  // namespace gdedup
