#pragma once

// HitSet — the hotness tracker of Section 5 ("Cache management").
//
// Accesses in the current period are counted exactly; older periods are
// retained as Bloom filters (membership only), matching Ceph's HitSet +
// in-memory bloomfilter arrangement the paper describes.  An object is hot
// when (current count + #recent periods it appears in) reaches Hitcount.
// The dedup engine skips hot objects and the cache manager keeps / promotes
// their chunks in the metadata pool.

#include <deque>
#include <string>
#include <unordered_map>

#include "common/bloom_filter.h"
#include "sim/scheduler.h"

namespace gdedup {

class HitSet {
 public:
  HitSet(SimTime period, int retained_periods, int hit_threshold);

  void access(const std::string& oid, SimTime now);
  bool is_hot(const std::string& oid, SimTime now);

  int threshold() const { return threshold_; }
  size_t history_depth() const { return history_.size(); }
  // Observability for the long-gap fast-forward: periods sealed into
  // blooms one by one (a fast-forward seals none) and the current window's
  // aligned start time.
  uint64_t periods_sealed() const { return periods_sealed_; }
  SimTime window_start() const { return window_start_; }

 private:
  void rotate(SimTime now);
  static uint64_t key_of(const std::string& oid);

  SimTime period_;
  int retained_;
  int threshold_;
  SimTime window_start_ = 0;
  uint64_t periods_sealed_ = 0;
  std::unordered_map<std::string, uint32_t> current_;
  std::deque<BloomFilter> history_;
};

}  // namespace gdedup
