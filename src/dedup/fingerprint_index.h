#pragma once

// Node-local fingerprint index — tier 1 of the two-tier fingerprint fast
// path (tier 0 is the COW-generation memo in fingerprint_cache.h).
//
// Maps the weak 64-bit content hash (hash/weak_hash.h) of recently
// fingerprinted chunks to their full SHA fingerprint *and* their real
// bytes.  A probe verifies the candidate by byte comparison before
// trusting it, so weak-hash collisions can never leak a wrong fingerprint
// into a chunk OID: a collision fails verification and falls back to the
// full SHA (the collision-injection test forces exactly this).  memcmp of
// a 32 KB chunk is an order of magnitude cheaper than hashing it, which
// is where the SHA avoidance comes from on dedup-heavy workloads.
//
// Shape: sharded by the low bits of the weak hash; each shard is an LRU
// of weak64 -> {content, fingerprint} plus a Bloom filter so the common
// unique-chunk case (negative lookup) answers without touching the map.
// Bloom filters cannot delete, so each shard rebuilds its filter from the
// surviving LRU keys once insertions outnumber capacity enough to degrade
// the false-positive rate.  Capacity is bounded both by entry count and
// by retained content bytes — entries pin their chunk's Buffer (cheap
// when the store read was zero-copy, a real copy after overlay merges).
//
// Concurrency: one index per storage node, shared by that node's OSD
// tiers.  The event engine runs every event of a node on that node's
// shard (DESIGN.md §9), and probes/inserts happen only from tier code on
// the owning node's event thread — never from exec-pool workers — so the
// index is thread-confined and lock-free by construction.  Index state
// feeds *host-side* decisions only (whether to run the SHA kernel); the
// verified fingerprint is identical either way, so nothing virtual-time
// observable depends on its contents.

#include <cstdint>
#include <vector>

#include "common/bloom_filter.h"
#include "common/buffer.h"
#include "common/lru.h"
#include "hash/fingerprint.h"

namespace gdedup {

class FingerprintIndex {
 public:
  struct Config {
    size_t max_entries = 8192;         // across all shards
    uint64_t max_bytes = 48ull << 20;  // retained chunk content cap
    int shards = 4;
    double bloom_fp_rate = 0.01;
  };

  // Probe outcome, most interesting first.  The caller (the tier) maps
  // these onto its per-entity perf counters; the index also keeps its own
  // totals for standalone use (bench_fp_lookup).
  enum class Outcome {
    kVerifiedHit,    // candidate found, bytes equal: fingerprint returned
    kCollision,      // candidate found, bytes differ: full SHA required
    kMiss,           // no candidate under this weak hash
    kBloomNegative,  // filter proved absence without a map lookup
  };

  struct Stats {
    uint64_t probes = 0;
    uint64_t verified_hits = 0;
    uint64_t collisions = 0;
    uint64_t misses = 0;           // map misses (bloom negatives included)
    uint64_t bloom_negatives = 0;
    uint64_t inserts = 0;
    uint64_t evictions = 0;
    uint64_t bloom_rebuilds = 0;
    uint64_t bloom_rebuild_keys = 0;  // keys re-inserted across rebuilds
  };

  // Modeled cost of the rebuilds so far, in ns: keys re-inserted times a
  // fixed per-key constant.  Deterministic by construction (a wall-clock
  // measurement would differ run to run and across shard/thread counts),
  // which is what lets the telemetry timeline stay byte-identical.
  static constexpr uint64_t kBloomRebuildNsPerKey = 50;
  uint64_t bloom_rebuild_cost_ns() const {
    return stats_.bloom_rebuild_keys * kBloomRebuildNsPerKey;
  }

  struct ProbeResult {
    Outcome outcome = Outcome::kMiss;
    const Fingerprint* fp = nullptr;  // valid only on kVerifiedHit, and
                                      // only until the next insert()
    bool hit() const { return fp != nullptr; }
  };

  FingerprintIndex();  // default Config
  explicit FingerprintIndex(Config cfg);

  ProbeResult probe(uint64_t weak, const Buffer& content);
  void insert(uint64_t weak, const Buffer& content, const Fingerprint& fp);

  const Stats& stats() const { return stats_; }
  size_t size() const;
  uint64_t retained_bytes() const;
  void clear();

 private:
  struct Entry {
    Buffer content;
    Fingerprint fp;
  };
  struct Shard {
    LruMap<uint64_t, Entry> lru;
    BloomFilter bloom;
    uint64_t bytes = 0;
    uint64_t bloom_inserts = 0;

    Shard(size_t cap, double fp_rate)
        : lru(cap), bloom(cap, fp_rate) {}
  };

  Shard& shard_of(uint64_t weak) {
    return shards_[weak & (shards_.size() - 1)];
  }
  void maybe_rebuild_bloom(Shard& s);

  Config cfg_;
  size_t shard_entry_cap_;
  uint64_t shard_byte_cap_;
  std::vector<Shard> shards_;
  Stats stats_;
};

}  // namespace gdedup
