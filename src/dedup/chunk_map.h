#pragma once

// The chunk map — the metadata half of the paper's self-contained object.
//
// Stored as an xattr *inside* the metadata object it describes (Figure 8),
// so replication, erasure coding and recovery carry it along with the data
// for free.  Each entry maps an offset range of the user-visible object to
// a chunk object (by content-derived OID) plus the cached/dirty state bits
// that drive the post-processing engine:
//
//   cached  — the chunk's bytes are present in this object's data part
//   dirty   — the chunk has writes not yet flushed to the chunk pool
//
// Entries encode to a fixed 150 bytes, the per-entry footprint the paper
// reports (Section 5), so the Table 2 metadata-overhead accounting matches.

#include <cstdint>
#include <map>
#include <string>

#include "common/buffer.h"
#include "common/status.h"

namespace gdedup {

class ObjectStore;
struct ObjectKey;

// Whole-map xattr (legacy wire form; kept for snapshot-style encodes).
inline constexpr const char* kChunkMapXattr = "dedup.chunkmap";
// Per-entry omap keys: "dedup.ck.<offset hex>".  Persisting entries
// individually means a small write updates ~150 bytes of metadata, not
// the whole map — the same reason Ceph keeps per-chunk state in omap.
inline constexpr const char* kChunkEntryPrefix = "dedup.ck.";
// Recipe-record omap keys: "dedup.rcp.<window base hex>".  Each record
// names a content-addressed recipe chunk in the chunk pool holding the
// packed entries of one fixed offset-aligned window (Metadedup-style
// metadata indirection).  Inline "dedup.ck." entries overlay the recipe
// content: an inline entry for an offset always wins over the recipe's
// copy, so recipes never need rewriting to absorb a single hot slot.
inline constexpr const char* kRecipeRecordPrefix = "dedup.rcp.";
// Refs a recipe chunk carries use the window base with this bit set as
// the ref offset, so recipe refs can never collide with data-slot refs
// (logical object offsets stay far below 2^63).
inline constexpr uint64_t kRecipeRefBit = 1ULL << 63;

struct ChunkMapEntry {
  uint64_t offset = 0;
  uint32_t length = 0;
  std::string chunk_id;  // fingerprint-hex OID; empty until first flush
  bool cached = false;
  bool dirty = false;
  // Offset of this slot's bytes inside the chunk object.  0 for ordinary
  // chunks (the chunk object IS the slot content); nonzero only for slots
  // the selective-rewrite pass coalesced into a shared container object.
  // Encodes as trailing zeros when 0, so default-mode omap bytes are
  // byte-identical to the pre-container format.
  uint64_t chunk_off = 0;
  // Slot is a member of a rewrite container (chunk_id names the container
  // object; chunk_off locates the slot inside it).  Container members are
  // never re-selected by the rewrite pass.
  bool container = false;
  // Volatile (not encoded): bumped on every dirtying write, so a flush
  // can detect that newer data landed while it was in flight.
  uint64_t dirty_gen = 0;
  // Volatile (not encoded): this entry has an inline "dedup.ck." omap
  // record on disk.  False only for entries materialized purely from a
  // recipe chunk; the recipe compactor uses it to count the inline tail
  // and to know which shadow records a rebuild may drop.
  bool inline_rec = false;

  bool flushed() const { return !chunk_id.empty(); }
};

// One persisted recipe record: the entries of window [base, base+span)
// live packed inside recipe chunk `chunk_id` in `chunk_pool`.
struct RecipeRecord {
  uint64_t base = 0;
  uint32_t count = 0;       // member entries at write time
  int chunk_pool = -1;      // PoolId of the recipe chunk object's pool
                            // (plain int: this header predates osd types)
  std::string chunk_id;     // fingerprint-hex OID of the recipe chunk

  static std::string omap_key(uint64_t base);
  Buffer encode() const;
  static Result<RecipeRecord> decode(const Buffer& b);
};

class ChunkMap {
 public:
  // Fixed on-disk entry footprint (paper Section 5: "each chunk entry in
  // chunk map uses 150 bytes").
  static constexpr size_t kEntryEncodedBytes = 150;

  bool empty() const { return entries_.empty(); }
  size_t size() const { return entries_.size(); }

  const ChunkMapEntry* find(uint64_t offset) const;
  ChunkMapEntry* find(uint64_t offset);

  // Get-or-create the entry at `offset`; `length` updates the stored
  // length (chunk growth when the object's tail extends).
  ChunkMapEntry& obtain(uint64_t offset, uint32_t length);

  bool erase(uint64_t offset);

  bool any_dirty() const;
  uint64_t logical_end() const;  // max(offset + length)

  std::map<uint64_t, ChunkMapEntry>& entries() { return entries_; }
  const std::map<uint64_t, ChunkMapEntry>& entries() const { return entries_; }

  Buffer encode() const;
  static Result<ChunkMap> decode(const Buffer& b);

  // Per-entry persistence (omap form).
  static std::string omap_key(uint64_t offset);
  static Buffer encode_entry(const ChunkMapEntry& e);
  static Result<ChunkMapEntry> decode_entry(const Buffer& b);

  // Varint-packed entry form (recipe mode).  A dirty unflushed entry
  // packs to ~6 bytes and a flushed sha256 entry to ~40, vs the fixed
  // 150-byte legacy form.  The packed encoder never emits exactly
  // kEntryEncodedBytes (it pads by one byte if it would), so
  // decode_entry_auto can dispatch on value size alone and legacy
  // records written before the feature flipped on keep decoding.
  static Buffer encode_entry_packed(const ChunkMapEntry& e);
  static Result<ChunkMapEntry> decode_entry_packed(const Buffer& b);
  static Result<ChunkMapEntry> decode_entry_auto(const Buffer& b);

  // Recipe records loaded from / destined for this object's omap, keyed
  // by window base.  Populated only by the recipe-aware loader.
  std::map<uint64_t, RecipeRecord>& recipes() { return recipes_; }
  const std::map<uint64_t, RecipeRecord>& recipes() const { return recipes_; }

  // Set when the recipe-aware loader could not fetch some recipe chunk
  // (e.g. every holder down).  Consumers that enumerate refs must treat
  // the map as incomplete and act conservatively.
  bool unresolved() const { return unresolved_; }
  void set_unresolved(bool v) { unresolved_ = v; }

 private:
  std::map<uint64_t, ChunkMapEntry> entries_;
  std::map<uint64_t, RecipeRecord> recipes_;
  bool unresolved_ = false;
};

// Load a chunk map from an object's per-entry omap records.
Result<ChunkMap> load_chunk_map(const ObjectStore& store,
                                const ObjectKey& key);

}  // namespace gdedup
