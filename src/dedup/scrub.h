#pragma once

// Scrub & garbage collection for the dedup pools.
//
// Double hashing makes deep integrity checking almost free to reason
// about: a chunk object is self-verifying, because its OID *is* the
// fingerprint of its content.  The scrubber exploits that:
//
//  - content scrub: recompute each chunk's fingerprint and compare with
//    its OID; any mismatch is silent corruption.
//  - replica scrub: compare replica copies bit-for-bit (repairable from
//    the majority/primary copy).
//  - reference audit: cross-check chunk-object reference lists against
//    the chunk maps of the metadata pool.  Dangling references (the
//    source object vanished, or its map moved on) are exactly what the
//    paper's false-positive refcounting leaves behind — "this approach
//    needs additional garbage collection process" (Section 4.6).  The GC
//    drops them and reclaims chunks whose last reference dies.
//  - leak audit: chunk objects no map references at all (crash between
//    chunk put and map update, never redone) are reclaimed.
//
// The scrubber runs as a control-plane pass (like recovery): it scans
// local stores directly and charges disk-read time for the bytes it
// verifies, so benches can report scrub cost.

#include <cstdint>
#include <string>
#include <vector>

#include "obs/perf_counters.h"
#include "osd/cluster_context.h"
#include "osd/osd.h"

namespace gdedup {

// Perf-counter indices for the control-plane scrub / GC passes (registry
// entity "scrub.pool<metadata_pool>").  Scrubber instances are transient —
// the fault campaign builds one per event — so the entity is looked up and
// reused across passes; counts are cumulative per metadata pool.
enum {
  l_scrub_first = 4000,
  l_scrub_deep_scrubs,
  l_scrub_gc_passes,
  l_scrub_chunks_checked,
  l_scrub_bytes_verified,
  l_scrub_fp_mismatches,
  l_scrub_replica_mismatches,
  l_scrub_replicas_repaired,
  l_scrub_refs_checked,
  l_scrub_dangling_refs_dropped,
  l_scrub_leaked_chunks_reclaimed,
  l_scrub_refs_repaired,
  l_scrub_busy_ref_skips,
  l_scrub_pass_lat,  // virtual duration of one pass (scrub or GC), ns
  l_scrub_last,
};

struct ScrubReport {
  uint64_t chunks_checked = 0;
  uint64_t bytes_verified = 0;
  uint64_t fingerprint_mismatches = 0;  // content != OID (corruption)
  uint64_t replica_mismatches = 0;      // replicas differ
  uint64_t replicas_repaired = 0;
  uint64_t refs_checked = 0;
  uint64_t dangling_refs_dropped = 0;   // ref's source no longer holds it
  uint64_t leaked_chunks_reclaimed = 0; // zero live references
  uint64_t refs_repaired = 0;           // held-but-unrecorded refs re-added
  uint64_t busy_ref_skips = 0;          // refs spared: source mid-flush
  SimTime duration = 0;

  bool clean() const {
    return fingerprint_mismatches == 0 && replica_mismatches == 0 &&
           dangling_refs_dropped == 0 && leaked_chunks_reclaimed == 0 &&
           refs_repaired == 0;
  }
};

class Scrubber {
 public:
  Scrubber(ClusterContext* ctx, PoolId metadata_pool, PoolId chunk_pool);

  // Verify chunk content against OIDs and replicas against each other.
  // With `repair`, divergent replicas are overwritten from a copy whose
  // content matches the OID.  Runs the scheduler to completion.
  ScrubReport deep_scrub(bool repair = true);

  // Cross-check references and collect garbage: drop refs whose source
  // slot no longer points at the chunk, repair refs the maps hold but the
  // chunk forgot, reclaim unreferenced chunks.  Consults the dedup tiers'
  // volatile state so an open chunk-put -> map-update flush window is never
  // mistaken for garbage.  Runs the scheduler to completion.
  ScrubReport collect_garbage();

 private:
  // All chunk-object keys, with the OSDs that hold a copy/shard.
  std::vector<std::pair<ObjectKey, std::vector<OsdId>>> chunk_holders() const;

  // Fold one pass's report into the shared per-pool counters.
  void record_pass(const ScrubReport& rep, bool gc);

  ClusterContext* ctx_;
  PoolId meta_;
  PoolId chunks_;
  obs::PerfCountersRef perf_;  // null when the context has no registry
};

}  // namespace gdedup
