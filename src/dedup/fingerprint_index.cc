#include "dedup/fingerprint_index.h"

#include <algorithm>

namespace gdedup {

namespace {

size_t round_up_pow2(size_t v) {
  size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

FingerprintIndex::FingerprintIndex() : FingerprintIndex(Config()) {}

FingerprintIndex::FingerprintIndex(Config cfg) : cfg_(cfg) {
  const size_t nshards =
      round_up_pow2(static_cast<size_t>(std::max(1, cfg_.shards)));
  shard_entry_cap_ = std::max<size_t>(1, cfg_.max_entries / nshards);
  shard_byte_cap_ = std::max<uint64_t>(1, cfg_.max_bytes / nshards);
  shards_.reserve(nshards);
  for (size_t i = 0; i < nshards; i++) {
    shards_.emplace_back(shard_entry_cap_, cfg_.bloom_fp_rate);
  }
}

FingerprintIndex::ProbeResult FingerprintIndex::probe(uint64_t weak,
                                                      const Buffer& content) {
  stats_.probes++;
  Shard& s = shard_of(weak);
  if (!s.bloom.maybe_contains(weak)) {
    stats_.bloom_negatives++;
    stats_.misses++;
    return {Outcome::kBloomNegative, nullptr};
  }
  Entry* e = s.lru.get(weak);
  if (e == nullptr) {
    stats_.misses++;
    return {Outcome::kMiss, nullptr};
  }
  if (!e->content.content_equals(content)) {
    // Weak-hash collision: the candidate is a *different* chunk that
    // happens to share the weak hash.  Never trust it — the caller falls
    // back to the full SHA and insert() will make the newer chunk the
    // shard's candidate for this key.
    stats_.collisions++;
    return {Outcome::kCollision, nullptr};
  }
  stats_.verified_hits++;
  return {Outcome::kVerifiedHit, &e->fp};
}

void FingerprintIndex::insert(uint64_t weak, const Buffer& content,
                              const Fingerprint& fp) {
  if (content.empty()) return;
  Shard& s = shard_of(weak);
  stats_.inserts++;
  if (Entry* e = s.lru.get(weak)) {
    // Refresh in place (same content re-fingerprinted, or a colliding
    // chunk displacing the previous candidate).
    s.bytes -= e->content.size();
    e->content = content;
    e->fp = fp;
    s.bytes += content.size();
  } else {
    if (auto evicted = s.lru.put(weak, Entry{content, fp})) {
      s.bytes -= evicted->second.content.size();
      stats_.evictions++;
    }
    s.bytes += content.size();
    s.bloom.insert(weak);
    s.bloom_inserts++;
  }
  // Byte budget: drop coldest entries until the retained content fits.
  while (s.bytes > shard_byte_cap_ && s.lru.size() > 1) {
    const auto* victim = s.lru.coldest();
    s.bytes -= victim->second.content.size();
    s.lru.erase(victim->first);
    stats_.evictions++;
  }
  maybe_rebuild_bloom(s);
}

void FingerprintIndex::maybe_rebuild_bloom(Shard& s) {
  // Blooms cannot delete: once lifetime insertions dwarf the live set the
  // false-positive rate decays toward 1 and the negative fast path stops
  // paying.  Rebuild from the surviving keys.
  if (s.bloom_inserts < 8 * shard_entry_cap_) return;
  s.bloom.clear();
  for (const auto& [key, entry] : s.lru) {
    (void)entry;
    s.bloom.insert(key);
  }
  s.bloom_inserts = s.lru.size();
  stats_.bloom_rebuilds++;
  stats_.bloom_rebuild_keys += s.lru.size();
}

size_t FingerprintIndex::size() const {
  size_t n = 0;
  for (const Shard& s : shards_) n += s.lru.size();
  return n;
}

uint64_t FingerprintIndex::retained_bytes() const {
  uint64_t n = 0;
  for (const Shard& s : shards_) n += s.bytes;
  return n;
}

void FingerprintIndex::clear() {
  for (Shard& s : shards_) {
    s.lru.clear();
    s.bloom.clear();
    s.bytes = 0;
    s.bloom_inserts = 0;
  }
}

}  // namespace gdedup
